// Package sim is the repository's stand-in for the paper's Intel
// Paragon testbed: a discrete-event simulator that *executes* a
// scheduled program instead of merely reading the schedule length off
// the Gantt chart.
//
// Each processor runs its assigned tasks in schedule order; a task
// begins only when the processor is free and every parent's message has
// arrived. Messages depart when the producing task finishes and take
// the edge's communication cost to deliver, with two optional machine
// effects the static schedulers cannot anticipate:
//
//   - single-port contention: each processor serializes its outgoing
//     messages through one network interface (the Paragon NIC model),
//     so simultaneous sends queue behind each other;
//   - runtime perturbation: task durations are scaled by a deterministic
//     pseudo-random factor, modelling the gap between the timing
//     database's estimates and real execution.
//
// The simulated finish time of the last task is the "application
// execution time" reported in the paper's tables.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"fastsched/internal/dag"
	"fastsched/internal/obs"
	"fastsched/internal/sched"
)

// Config selects the machine effects applied during simulation.
type Config struct {
	// Contention enables single-port send serialization per processor.
	Contention bool
	// Perturb is the maximum relative deviation of actual task durations
	// from their static weights (e.g. 0.1 scales each task by a factor
	// uniform in [0.9, 1.1]). Zero disables perturbation.
	Perturb float64
	// Seed drives the perturbation; the same seed replays identically.
	Seed int64
	// Topology adds mesh-distance latency to message delivery; the zero
	// value disables it.
	Topology Mesh
	// Faults injects seeded machine faults (processor crashes, message
	// loss/delay with bounded retry, duration jitter). nil or the zero
	// plan injects nothing and reproduces the fault-free run
	// bit-for-bit; a crash that prevents completion surfaces as a
	// *CrashError, which internal/resched turns into a repaired run.
	Faults *FaultPlan
	// Metrics, when non-nil, receives execution telemetry after the run:
	// per-kind event counts, messages delivered, retransmissions,
	// crashes, and tasks completed. The counts are tallied locally and
	// flushed once, so the event loop itself is untouched; a nil sink
	// costs nothing.
	Metrics obs.Sink
}

// Report is the outcome of one simulated execution.
type Report struct {
	// Time is the simulated execution time of the program (makespan).
	Time float64
	// Finish holds each task's simulated finish time.
	Finish []float64
	// BusyTime holds per-processor busy (computing) time, keyed by the
	// schedule's processor IDs.
	BusyTime map[int]float64
	// Messages is the number of inter-processor messages delivered.
	Messages int
	// Retries is the number of message retransmissions forced by the
	// fault plan's transient loss model (zero without faults).
	Retries int
}

// Utilization returns average processor busy time divided by total time.
func (r *Report) Utilization() float64 {
	if r.Time == 0 || len(r.BusyTime) == 0 {
		return 0
	}
	var busy float64
	for _, b := range r.BusyTime {
		busy += b
	}
	return busy / (r.Time * float64(len(r.BusyTime)))
}

// Run executes the schedule s of graph g under the machine model cfg.
// Tasks run in the per-processor order of the schedule; start times in
// the schedule are *not* trusted (they are the scheduler's prediction),
// only the assignment and ordering are.
func Run(g *dag.Graph, s *sched.Schedule, cfg Config) (*Report, error) {
	return run(g, s, cfg, nil)
}

func run(g *dag.Graph, s *sched.Schedule, cfg Config, tr *Tracer) (*Report, error) {
	v := g.NumNodes()
	if s.NumNodes() != v {
		return nil, errors.New("sim: schedule does not match graph")
	}
	for i := 0; i < v; i++ {
		if !s.Assigned(dag.NodeID(i)) {
			return nil, fmt.Errorf("sim: node %d unassigned", i)
		}
	}
	faults := cfg.Faults.Enabled()
	if faults {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}

	duration := actualDurations(g, cfg)

	// Per-processor execution state.
	procs := s.Procs()
	queue := make(map[int][]dag.NodeID, len(procs)) // remaining tasks, schedule order
	nextIdx := make(map[int]int, len(procs))
	procFree := make(map[int]float64, len(procs)) // time the CPU becomes idle
	portFree := make(map[int]float64, len(procs)) // time the send port frees up
	busy := make(map[int]float64, len(procs))
	running := make(map[int]dag.NodeID, len(procs))
	for _, p := range procs {
		queue[p] = s.OnProc(p)
		procFree[p] = 0
		busy[p] = 0
		running[p] = dag.None
	}

	arrived := make([]int, v) // messages received so far, per task
	lastArrival := make([]float64, v)
	startT := make([]float64, v)
	finish := make([]float64, v)
	started := make([]bool, v)
	done := make([]bool, v)
	aborted := make([]bool, v)
	var abortedList []dag.NodeID
	dead := make(map[int]bool)
	var crashed []Crash
	messages, retries := 0, 0

	// Fault machinery: a dedicated RNG for loss/delay draws (drawn in
	// deterministic event-pop order) and the crash events. None of this
	// runs for a nil/zero plan, keeping fault-free runs bit-identical.
	var frng *rand.Rand
	budget := 4*(v+g.NumEdges()) + 16*len(procs)
	if faults {
		frng = rand.New(rand.NewSource(cfg.Faults.Seed))
		budget += 4 * (len(cfg.Faults.Crashes) + 1)
	}

	events := &eventQueue{}
	// A task with no remote parents can start as soon as the processor
	// reaches it; seed the simulation by trying to start the head task of
	// every processor.
	for _, p := range procs {
		events.push(event{time: 0, kind: evTryStart, proc: p})
	}
	if faults {
		for _, c := range cfg.Faults.Crashes {
			events.push(event{time: c.Time, kind: evCrash, proc: c.Proc})
		}
	}

	completed := 0
	guard := 0
	var evCount [4]int64 // popped events per kind, indexed by eventKind
	if cfg.Metrics != nil {
		// Flushed on every exit path (success, crash, loss, deadlock);
		// the deferred closure reads the locals' final values.
		defer func() {
			m := cfg.Metrics
			m.Counter("sim.events.crash").Add(evCount[evCrash])
			m.Counter("sim.events.arrive").Add(evCount[evArrive])
			m.Counter("sim.events.try_start").Add(evCount[evTryStart])
			m.Counter("sim.events.finish").Add(evCount[evFinish])
			m.Counter("sim.messages").Add(int64(messages))
			m.Counter("sim.retries").Add(int64(retries))
			m.Counter("sim.crashes").Add(int64(len(crashed)))
			m.Counter("sim.tasks_completed").Add(int64(completed))
			m.Counter("sim.tasks_aborted").Add(int64(len(abortedList)))
		}()
	}
	for events.Len() > 0 {
		guard++
		if guard > budget {
			return nil, errors.New("sim: event budget exceeded (schedule deadlocked?)")
		}
		ev := events.pop()
		evCount[ev.kind]++
		switch ev.kind {
		case evCrash:
			p := ev.proc
			if dead[p] {
				continue
			}
			dead[p] = true
			crashed = append(crashed, Crash{Proc: p, Time: ev.time})
			tr.add(TraceEvent{Time: ev.time, Kind: "crash", Proc: p})
			if n := running[p]; n != dag.None {
				// The task dies mid-instruction: its partial work is lost
				// and only the time up to the crash counts as busy.
				aborted[n] = true
				abortedList = append(abortedList, n)
				busy[p] -= finish[n] - ev.time
				running[p] = dag.None
				tr.add(TraceEvent{Time: ev.time, Kind: "abort", Node: n, Proc: p})
			}

		case evArrive:
			n := ev.node
			arrived[n]++
			if ev.time > lastArrival[n] {
				lastArrival[n] = ev.time
			}
			tr.add(TraceEvent{Time: ev.time, Kind: "arrive", Node: n, Proc: s.Proc(n), From: ev.from})
			events.push(event{time: ev.time, kind: evTryStart, proc: s.Proc(n)})

		case evTryStart:
			p := ev.proc
			if dead[p] {
				continue
			}
			i := nextIdx[p]
			if i >= len(queue[p]) {
				continue
			}
			n := queue[p][i]
			if started[n] || arrived[n] < remoteParents(g, s, n) {
				continue // still waiting for messages
			}
			if !localParentsDone(g, s, n, done) {
				continue // a co-located parent has not produced its result yet
			}
			start := maxf(ev.time, maxf(procFree[p], lastArrival[n]))
			// Local parents must have finished; they precede n on p by
			// schedule order, so procFree already covers them.
			started[n] = true
			tr.add(TraceEvent{Time: start, Kind: "start", Node: n, Proc: p})
			f := start + duration[n]
			startT[n] = start
			finish[n] = f
			procFree[p] = f
			busy[p] += duration[n]
			running[p] = n
			events.push(event{time: f, kind: evFinish, node: n, proc: p})

		case evFinish:
			n, p := ev.node, ev.proc
			if aborted[n] {
				continue // the processor died under this task
			}
			done[n] = true
			completed++
			nextIdx[p]++
			running[p] = dag.None
			tr.add(TraceEvent{Time: ev.time, Kind: "finish", Node: n, Proc: p})
			// Dispatch messages to children; local children need no
			// message, remote ones pay the edge cost (plus port queuing
			// under contention).
			sendAt := ev.time
			for _, e := range g.Succ(n) {
				dst := s.Proc(e.To)
				if dst == p {
					continue
				}
				if dead[dst] {
					continue // nobody is listening on a crashed processor
				}
				depart := sendAt
				if cfg.Contention {
					depart = maxf(depart, portFree[p])
				}
				extra := 0.0
				if faults {
					var lost bool
					var r int
					depart, extra, r, lost = transmit(cfg.Faults, frng, depart, e.Weight, tr, n, e.To, p)
					retries += r
					if lost {
						return nil, &MessageLossError{From: n, To: e.To, Attempts: cfg.Faults.maxRetries() + 1}
					}
				}
				if cfg.Contention {
					portFree[p] = depart + e.Weight
				}
				messages++
				tr.add(TraceEvent{Time: depart, Kind: "send", Node: e.To, Proc: p, From: n})
				arrive := depart + e.Weight + cfg.Topology.Delay(p, dst) + extra
				events.push(event{time: arrive, kind: evArrive, node: e.To, from: n})
			}
			events.push(event{time: ev.time, kind: evTryStart, proc: p})
		}
	}

	if completed != v {
		if len(crashed) > 0 {
			free := make(map[int]float64, len(procs))
			for _, p := range procs {
				if !dead[p] {
					free[p] = procFree[p]
				}
			}
			return nil, &CrashError{
				Crashes: crashed, Done: done, Start: startT, Finish: finish,
				Aborted: abortedList, Dead: dead, ProcFree: free, BusyTime: busy,
				Messages: messages, Retries: retries, Completed: completed,
			}
		}
		return nil, fmt.Errorf("sim: deadlock — %d of %d tasks completed (schedule order violates precedence)", completed, v)
	}
	var makespan float64
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return &Report{Time: makespan, Finish: finish, BusyTime: busy, Messages: messages, Retries: retries}, nil
}

// transmit plays one remote message through the fault plan's transient
// loss model: each attempt is lost with probability MsgLoss; retry k
// departs after the failed transmission's wire time plus an
// exponentially growing backoff. It returns the departure time of the
// successful attempt, the extra random delivery delay, the number of
// retries used, and whether the retry budget was exhausted (the message
// is then permanently lost).
func transmit(fp *FaultPlan, frng *rand.Rand, depart, wire float64, tr *Tracer, from, to dag.NodeID, proc int) (_, extra float64, retries int, lost bool) {
	if fp.MsgLoss > 0 {
		backoff := fp.retryBackoff()
		delivered := false
		for a := 0; a <= fp.maxRetries(); a++ {
			if a > 0 {
				retries++
				tr.add(TraceEvent{Time: depart, Kind: "retry", Node: to, Proc: proc, From: from})
			}
			if frng.Float64() >= fp.MsgLoss {
				delivered = true
				break
			}
			tr.add(TraceEvent{Time: depart, Kind: "drop", Node: to, Proc: proc, From: from})
			depart += wire + backoff
			backoff *= 2
		}
		if !delivered {
			return depart, 0, retries, true
		}
	}
	if fp.MsgDelay > 0 {
		extra = frng.Float64() * fp.MsgDelay
	}
	return depart, extra, retries, false
}

// actualDurations returns the realized task durations under cfg's
// perturbation model, with the fault plan's jitter (when enabled)
// applied on top from its own seeded stream.
func actualDurations(g *dag.Graph, cfg Config) []float64 {
	v := g.NumNodes()
	d := make([]float64, v)
	if cfg.Perturb <= 0 {
		for i := 0; i < v; i++ {
			d[i] = g.Weight(dag.NodeID(i))
		}
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		for i := 0; i < v; i++ {
			factor := 1 + cfg.Perturb*(2*rng.Float64()-1)
			d[i] = g.Weight(dag.NodeID(i)) * factor
		}
	}
	if fp := cfg.Faults; fp.Enabled() && fp.Jitter > 0 {
		jrng := rand.New(rand.NewSource(fp.Seed))
		for i := 0; i < v; i++ {
			d[i] *= 1 + fp.Jitter*(2*jrng.Float64()-1)
		}
	}
	return d
}

// localParentsDone reports whether every co-located parent of n has
// completed; a schedule that orders a child before its local parent on
// the same processor is an invalid program and blocks here (surfacing
// as a deadlock).
func localParentsDone(g *dag.Graph, s *sched.Schedule, n dag.NodeID, done []bool) bool {
	for _, e := range g.Pred(n) {
		if s.Proc(e.From) == s.Proc(n) && !done[e.From] {
			return false
		}
	}
	return true
}

// remoteParents counts n's parents on other processors — the messages n
// must receive before starting.
func remoteParents(g *dag.Graph, s *sched.Schedule, n dag.NodeID) int {
	c := 0
	for _, e := range g.Pred(n) {
		if s.Proc(e.From) != s.Proc(n) {
			c++
		}
	}
	return c
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

type eventKind uint8

const (
	// evCrash sorts first so a crash at time t preempts anything else
	// scheduled at t — a task finishing exactly at the crash instant is
	// aborted, deterministically.
	evCrash    eventKind = iota // a processor fails permanently
	evArrive                    // a message reaches its destination task
	evTryStart                  // a processor re-checks its next task
	evFinish                    // a task completes
)

type event struct {
	time float64
	kind eventKind
	node dag.NodeID
	proc int
	from dag.NodeID // producing task, for arrival events
}

// eventQueue is a time-ordered min-heap of events with typed push/pop
// (container/heap would box every event into an interface — one heap
// allocation per event, the dominant cost on large simulations). Ties
// resolve by kind, then node/proc, keeping runs deterministic.
type eventQueue struct{ ev []event }

func (q *eventQueue) Len() int { return len(q.ev) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.ev[i], q.ev[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.proc < b.proc
}

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[parent], q.ev[i] = q.ev[i], q.ev[parent]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev = q.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.ev) && q.less(l, small) {
			small = l
		}
		if r < len(q.ev) && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q.ev[i], q.ev[small] = q.ev[small], q.ev[i]
		i = small
	}
	return top
}
