// Package sim is the repository's stand-in for the paper's Intel
// Paragon testbed: a discrete-event simulator that *executes* a
// scheduled program instead of merely reading the schedule length off
// the Gantt chart.
//
// Each processor runs its assigned tasks in schedule order; a task
// begins only when the processor is free and every parent's message has
// arrived. Messages depart when the producing task finishes and take
// the edge's communication cost to deliver, with two optional machine
// effects the static schedulers cannot anticipate:
//
//   - single-port contention: each processor serializes its outgoing
//     messages through one network interface (the Paragon NIC model),
//     so simultaneous sends queue behind each other;
//   - runtime perturbation: task durations are scaled by a deterministic
//     pseudo-random factor, modelling the gap between the timing
//     database's estimates and real execution.
//
// The simulated finish time of the last task is the "application
// execution time" reported in the paper's tables.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"fastsched/internal/dag"
	"fastsched/internal/sched"
)

// Config selects the machine effects applied during simulation.
type Config struct {
	// Contention enables single-port send serialization per processor.
	Contention bool
	// Perturb is the maximum relative deviation of actual task durations
	// from their static weights (e.g. 0.1 scales each task by a factor
	// uniform in [0.9, 1.1]). Zero disables perturbation.
	Perturb float64
	// Seed drives the perturbation; the same seed replays identically.
	Seed int64
	// Topology adds mesh-distance latency to message delivery; the zero
	// value disables it.
	Topology Mesh
}

// Report is the outcome of one simulated execution.
type Report struct {
	// Time is the simulated execution time of the program (makespan).
	Time float64
	// Finish holds each task's simulated finish time.
	Finish []float64
	// BusyTime holds per-processor busy (computing) time, keyed by the
	// schedule's processor IDs.
	BusyTime map[int]float64
	// Messages is the number of inter-processor messages delivered.
	Messages int
}

// Utilization returns average processor busy time divided by total time.
func (r *Report) Utilization() float64 {
	if r.Time == 0 || len(r.BusyTime) == 0 {
		return 0
	}
	var busy float64
	for _, b := range r.BusyTime {
		busy += b
	}
	return busy / (r.Time * float64(len(r.BusyTime)))
}

// Run executes the schedule s of graph g under the machine model cfg.
// Tasks run in the per-processor order of the schedule; start times in
// the schedule are *not* trusted (they are the scheduler's prediction),
// only the assignment and ordering are.
func Run(g *dag.Graph, s *sched.Schedule, cfg Config) (*Report, error) {
	return run(g, s, cfg, nil)
}

func run(g *dag.Graph, s *sched.Schedule, cfg Config, tr *Tracer) (*Report, error) {
	v := g.NumNodes()
	if s.NumNodes() != v {
		return nil, errors.New("sim: schedule does not match graph")
	}
	for i := 0; i < v; i++ {
		if !s.Assigned(dag.NodeID(i)) {
			return nil, fmt.Errorf("sim: node %d unassigned", i)
		}
	}

	duration := actualDurations(g, cfg)

	// Per-processor execution state.
	procs := s.Procs()
	queue := make(map[int][]dag.NodeID, len(procs)) // remaining tasks, schedule order
	nextIdx := make(map[int]int, len(procs))
	procFree := make(map[int]float64, len(procs)) // time the CPU becomes idle
	portFree := make(map[int]float64, len(procs)) // time the send port frees up
	busy := make(map[int]float64, len(procs))
	for _, p := range procs {
		queue[p] = s.OnProc(p)
		procFree[p] = 0
		busy[p] = 0
	}

	arrived := make([]int, v) // messages received so far, per task
	lastArrival := make([]float64, v)
	finish := make([]float64, v)
	started := make([]bool, v)
	done := make([]bool, v)
	messages := 0

	events := &eventQueue{}
	// A task with no remote parents can start as soon as the processor
	// reaches it; seed the simulation by trying to start the head task of
	// every processor.
	for _, p := range procs {
		events.push(event{time: 0, kind: evTryStart, proc: p})
	}

	completed := 0
	guard := 0
	for events.Len() > 0 {
		guard++
		if guard > 4*(v+g.NumEdges())+16*len(procs) {
			return nil, errors.New("sim: event budget exceeded (schedule deadlocked?)")
		}
		ev := events.pop()
		switch ev.kind {
		case evArrive:
			n := ev.node
			arrived[n]++
			if ev.time > lastArrival[n] {
				lastArrival[n] = ev.time
			}
			tr.add(TraceEvent{Time: ev.time, Kind: "arrive", Node: n, Proc: s.Proc(n), From: ev.from})
			events.push(event{time: ev.time, kind: evTryStart, proc: s.Proc(n)})

		case evTryStart:
			p := ev.proc
			i := nextIdx[p]
			if i >= len(queue[p]) {
				continue
			}
			n := queue[p][i]
			if started[n] || arrived[n] < remoteParents(g, s, n) {
				continue // still waiting for messages
			}
			if !localParentsDone(g, s, n, done) {
				continue // a co-located parent has not produced its result yet
			}
			start := maxf(ev.time, maxf(procFree[p], lastArrival[n]))
			// Local parents must have finished; they precede n on p by
			// schedule order, so procFree already covers them.
			started[n] = true
			tr.add(TraceEvent{Time: start, Kind: "start", Node: n, Proc: p})
			f := start + duration[n]
			finish[n] = f
			procFree[p] = f
			busy[p] += duration[n]
			events.push(event{time: f, kind: evFinish, node: n, proc: p})

		case evFinish:
			n, p := ev.node, ev.proc
			done[n] = true
			completed++
			nextIdx[p]++
			tr.add(TraceEvent{Time: ev.time, Kind: "finish", Node: n, Proc: p})
			// Dispatch messages to children; local children need no
			// message, remote ones pay the edge cost (plus port queuing
			// under contention).
			sendAt := ev.time
			for _, e := range g.Succ(n) {
				dst := s.Proc(e.To)
				if dst == p {
					continue
				}
				depart := sendAt
				if cfg.Contention {
					depart = maxf(depart, portFree[p])
					portFree[p] = depart + e.Weight
				}
				messages++
				tr.add(TraceEvent{Time: depart, Kind: "send", Node: e.To, Proc: p, From: n})
				arrive := depart + e.Weight + cfg.Topology.Delay(p, dst)
				events.push(event{time: arrive, kind: evArrive, node: e.To, from: n})
			}
			events.push(event{time: ev.time, kind: evTryStart, proc: p})
		}
	}

	if completed != v {
		return nil, fmt.Errorf("sim: deadlock — %d of %d tasks completed (schedule order violates precedence)", completed, v)
	}
	var makespan float64
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return &Report{Time: makespan, Finish: finish, BusyTime: busy, Messages: messages}, nil
}

// actualDurations returns the realized task durations under cfg's
// perturbation model.
func actualDurations(g *dag.Graph, cfg Config) []float64 {
	v := g.NumNodes()
	d := make([]float64, v)
	if cfg.Perturb <= 0 {
		for i := 0; i < v; i++ {
			d[i] = g.Weight(dag.NodeID(i))
		}
		return d
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < v; i++ {
		factor := 1 + cfg.Perturb*(2*rng.Float64()-1)
		d[i] = g.Weight(dag.NodeID(i)) * factor
	}
	return d
}

// localParentsDone reports whether every co-located parent of n has
// completed; a schedule that orders a child before its local parent on
// the same processor is an invalid program and blocks here (surfacing
// as a deadlock).
func localParentsDone(g *dag.Graph, s *sched.Schedule, n dag.NodeID, done []bool) bool {
	for _, e := range g.Pred(n) {
		if s.Proc(e.From) == s.Proc(n) && !done[e.From] {
			return false
		}
	}
	return true
}

// remoteParents counts n's parents on other processors — the messages n
// must receive before starting.
func remoteParents(g *dag.Graph, s *sched.Schedule, n dag.NodeID) int {
	c := 0
	for _, e := range g.Pred(n) {
		if s.Proc(e.From) != s.Proc(n) {
			c++
		}
	}
	return c
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

type eventKind uint8

const (
	evArrive   eventKind = iota // a message reaches its destination task
	evTryStart                  // a processor re-checks its next task
	evFinish                    // a task completes
)

type event struct {
	time float64
	kind eventKind
	node dag.NodeID
	proc int
	from dag.NodeID // producing task, for arrival events
}

// eventQueue is a time-ordered min-heap of events with typed push/pop
// (container/heap would box every event into an interface — one heap
// allocation per event, the dominant cost on large simulations). Ties
// resolve by kind, then node/proc, keeping runs deterministic.
type eventQueue struct{ ev []event }

func (q *eventQueue) Len() int { return len(q.ev) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.ev[i], q.ev[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.proc < b.proc
}

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[parent], q.ev[i] = q.ev[i], q.ev[parent]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev = q.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.ev) && q.less(l, small) {
			small = l
		}
		if r < len(q.ev) && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q.ev[i], q.ev[small] = q.ev[small], q.ev[i]
		i = small
	}
	return top
}
