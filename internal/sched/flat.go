package sched

import (
	"fmt"
	"math"
	"sort"

	"fastsched/internal/dag"
)

// Flat is the large-graph schedule representation: three dense arrays
// indexed by node — 20 bytes per node, against the ~10x a *Schedule*
// costs with its per-processor lists and map bookkeeping. The
// hierarchical scheduler produces it directly from a CSR, and
// ValidateFlat checks it without ever materializing a *Graph.
type Flat struct {
	Algorithm string
	Procs     int       // number of processors (Assign values are < Procs)
	Assign    []int32   // processor of each node
	Start     []float64 // start time of each node
	Finish    []float64 // finish time of each node
}

// NumNodes returns the number of scheduled nodes.
func (f *Flat) NumNodes() int { return len(f.Assign) }

// Length returns the makespan.
func (f *Flat) Length() float64 {
	var max float64
	for _, t := range f.Finish {
		if t > max {
			max = t
		}
	}
	return max
}

// Balance returns the load-balance ratio max busy-time / mean
// busy-time across the schedule's Procs processors (idle processors
// count toward the mean): 1.0 is a perfectly even spread, Procs is one
// processor carrying everything. Returns 1 for an empty schedule.
func (f *Flat) Balance() float64 {
	if f.Procs <= 0 {
		return 1
	}
	busy := make([]float64, f.Procs)
	var total, max float64
	for n, p := range f.Assign {
		busy[p] += f.Finish[n] - f.Start[n]
	}
	for _, b := range busy {
		total += b
		if b > max {
			max = b
		}
	}
	if total == 0 {
		return 1
	}
	return max / (total / float64(f.Procs))
}

// ProcsUsed returns the number of distinct processors with work.
func (f *Flat) ProcsUsed() int {
	used := make([]bool, f.Procs)
	n := 0
	for _, p := range f.Assign {
		if !used[p] {
			used[p] = true
			n++
		}
	}
	return n
}

// ToSchedule converts to the rich *Schedule for the small-graph code
// paths (Gantt rendering, the simulator, sched.Validate).
func (f *Flat) ToSchedule() *Schedule {
	s := New(len(f.Assign))
	s.Algorithm = f.Algorithm
	for n := range f.Assign {
		s.Place(dag.NodeID(n), int(f.Assign[n]), f.Start[n], f.Finish[n])
	}
	return s
}

// ValidateFlat checks that f is a legal execution of the graph c in
// O(v log v + e): every node assigned a processor in range, durations
// matching the node weights, no overlap among positive-duration tasks
// on a processor (checked by sorting each processor's tasks by start
// and scanning adjacent pairs — never the O(v²) all-pairs comparison),
// and every precedence edge satisfied with communication charged when
// the endpoints sit on different processors.
func ValidateFlat(c *dag.CSR, f *Flat) error {
	const eps = 1e-6
	v := c.NumNodes()
	if len(f.Assign) != v || len(f.Start) != v || len(f.Finish) != v {
		return fmt.Errorf("sched: flat schedule sized %d/%d/%d, graph has %d nodes",
			len(f.Assign), len(f.Start), len(f.Finish), v)
	}
	for n := 0; n < v; n++ {
		if p := f.Assign[n]; p < 0 || int(p) >= f.Procs {
			return fmt.Errorf("sched: node %d on processor %d, have %d", n, p, f.Procs)
		}
		if f.Start[n] < -eps || math.IsNaN(f.Start[n]) {
			return fmt.Errorf("sched: node %d starts at %v", n, f.Start[n])
		}
		if d := f.Finish[n] - f.Start[n]; math.Abs(d-c.NodeW[n]) > eps {
			return fmt.Errorf("sched: node %d duration %v != weight %v", n, d, c.NodeW[n])
		}
	}
	// Exclusivity: sort node indices by (processor, start) and compare
	// neighbours. Zero-duration tasks occupy no processor time and are
	// exempt, matching Validate's contract.
	order := make([]int32, v)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := order[a], order[b]
		if f.Assign[na] != f.Assign[nb] {
			return f.Assign[na] < f.Assign[nb]
		}
		if f.Start[na] != f.Start[nb] {
			return f.Start[na] < f.Start[nb]
		}
		return na < nb
	})
	prev := int32(-1)
	for _, n := range order {
		if f.Finish[n]-f.Start[n] <= eps {
			continue
		}
		if prev >= 0 && f.Assign[prev] == f.Assign[n] && f.Start[n] < f.Finish[prev]-eps {
			return fmt.Errorf("sched: overlap on PE %d: node %d [%v,%v) vs node %d [%v,%v)",
				f.Assign[n], prev, f.Start[prev], f.Finish[prev], n, f.Start[n], f.Finish[n])
		}
		prev = n
	}
	// Precedence: walk the predecessor arenas once.
	for n := 0; n < v; n++ {
		for s := c.PredOff[n]; s < c.PredOff[n+1]; s++ {
			from := c.PredFrom[s]
			arrival := f.Finish[from]
			if f.Assign[from] != f.Assign[n] {
				arrival += c.PredW[s]
			}
			if f.Start[n] < arrival-eps {
				return fmt.Errorf("sched: precedence violated on edge %d->%d: child starts %v, message arrives %v",
					from, n, f.Start[n], arrival)
			}
		}
	}
	return nil
}
