package sched

import (
	"fmt"
	"sort"
	"strings"

	"fastsched/internal/dag"
)

// Gantt renders the schedule as a text Gantt chart, one line per
// processor, scaled to width columns. Node labels come from the graph.
//
//	PE 0 |n1 ||n3 ........||n7  |
//	PE 1 |....|n2 |n6 |
func Gantt(g *dag.Graph, s *Schedule, width int) string {
	if width < 20 {
		width = 20
	}
	length := s.Length()
	if length <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / length
	var b strings.Builder
	fmt.Fprintf(&b, "%s schedule, length %.6g, %d processor(s)\n", algName(s), length, s.ProcsUsed())
	for _, p := range s.Procs() {
		fmt.Fprintf(&b, "PE %-3d ", p)
		cursor := 0
		for _, n := range s.OnProc(p) {
			pl := s.Of(n)
			startCol := int(pl.Start * scale)
			endCol := int(pl.Finish * scale)
			if endCol <= startCol {
				endCol = startCol + 1
			}
			for cursor < startCol {
				b.WriteByte('.')
				cursor++
			}
			label := g.Label(n)
			if label == "" {
				label = fmt.Sprintf("n%d", n)
			}
			cell := "[" + label
			for len(cell) < endCol-startCol-1 {
				cell += " "
			}
			if len(cell) > endCol-startCol-1 {
				cell = cell[:maxInt(endCol-startCol-1, 1)]
			}
			cell += "]"
			b.WriteString(cell)
			cursor += len(cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func algName(s *Schedule) string {
	if s.Algorithm == "" {
		return "(unnamed)"
	}
	return s.Algorithm
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table renders the schedule as a start-time-sorted table of
// placements, useful in example programs and debugging.
func Table(g *dag.Graph, s *Schedule) string {
	rows := make([]Placement, 0, s.NumNodes())
	for i := 0; i < s.NumNodes(); i++ {
		if s.Assigned(dag.NodeID(i)) {
			rows = append(rows, s.Of(dag.NodeID(i)))
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Start != rows[j].Start {
			return rows[i].Start < rows[j].Start
		}
		return rows[i].Node < rows[j].Node
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-4s %10s %10s\n", "node", "PE", "start", "finish")
	for _, r := range rows {
		label := g.Label(r.Node)
		if label == "" {
			label = fmt.Sprintf("n%d", r.Node)
		}
		fmt.Fprintf(&b, "%-8s %-4d %10.4g %10.4g\n", label, r.Proc, r.Start, r.Finish)
	}
	return b.String()
}
