package sched

import (
	"fmt"
	"strings"

	"fastsched/internal/dag"
)

// SVG renders the schedule as a standalone SVG Gantt chart: one lane
// per processor, one labeled box per task, a time axis underneath.
// Width is the drawing width in pixels; lane height is fixed.
func SVG(g *dag.Graph, s *Schedule, width int) string {
	const (
		laneH   = 28
		gap     = 6
		leftPad = 52
		topPad  = 26
		axisH   = 30
	)
	if width < 200 {
		width = 200
	}
	length := s.Length()
	procs := s.Procs()
	height := topPad + len(procs)*(laneH+gap) + axisH
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16">%s schedule — length %.6g, %d processor(s)</text>`+"\n",
		leftPad, algName(s), length, s.ProcsUsed())
	if length <= 0 {
		b.WriteString("</svg>\n")
		return b.String()
	}
	scale := float64(width-leftPad-10) / length

	// Color tasks by class-of-work via a small stable palette keyed on
	// node ID, so re-renders are identical.
	palette := []string{"#4e79a7", "#f28e2b", "#76b7b2", "#e15759", "#59a14f", "#edc948", "#b07aa1", "#9c755f"}

	for li, p := range procs {
		y := topPad + li*(laneH+gap)
		fmt.Fprintf(&b, `<text x="4" y="%d">PE %d</text>`+"\n", y+laneH-9, p)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f4f4f4"/>`+"\n",
			leftPad, y, width-leftPad-10, laneH)
		for _, n := range s.OnProc(p) {
			pl := s.Of(n)
			x := leftPad + int(pl.Start*scale)
			w := int((pl.Finish - pl.Start) * scale)
			if w < 2 {
				w = 2
			}
			color := palette[int(n)%len(palette)]
			label := g.Label(n)
			if label == "" {
				label = fmt.Sprintf("n%d", n)
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333"><title>%s [%.6g, %.6g)</title></rect>`+"\n",
				x, y+2, w, laneH-4, color, label, pl.Start, pl.Finish)
			if w > 7*len(label) {
				fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#fff">%s</text>`+"\n", x+3, y+laneH-10, label)
			}
		}
	}
	// Time axis with ~8 ticks.
	axisY := topPad + len(procs)*(laneH+gap) + 12
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		leftPad, axisY, width-10, axisY)
	for i := 0; i <= 8; i++ {
		t := length * float64(i) / 8
		x := leftPad + int(t*scale)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", x, axisY, x, axisY+4)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%.4g</text>`+"\n", x-8, axisY+16, t)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
