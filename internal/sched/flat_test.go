package sched

import (
	"os"
	"strconv"
	"testing"
	"time"

	"fastsched/internal/dag"
	"fastsched/internal/workload"
)

// flatFixture builds a 4-node diamond and a legal 2-processor flat
// schedule for it: 0→{1,2}→3, unit comm except the heavy 0→2 edge.
func flatFixture(t *testing.T) (*dag.CSR, *Flat) {
	t.Helper()
	g := dag.New(4)
	n0 := g.AddNode("a", 2)
	n1 := g.AddNode("b", 3)
	n2 := g.AddNode("c", 1)
	n3 := g.AddNode("d", 2)
	g.MustAddEdge(n0, n1, 1)
	g.MustAddEdge(n0, n2, 4)
	g.MustAddEdge(n1, n3, 1)
	g.MustAddEdge(n2, n3, 1)
	f := &Flat{
		Algorithm: "test",
		Procs:     2,
		Assign:    []int32{0, 0, 1, 0},
		Start:     []float64{0, 2, 6, 8},
		Finish:    []float64{2, 5, 7, 10},
	}
	return dag.BuildCSR(g), f
}

func TestValidateFlatAccepts(t *testing.T) {
	c, f := flatFixture(t)
	if err := ValidateFlat(c, f); err != nil {
		t.Fatal(err)
	}
	if f.Length() != 10 {
		t.Fatalf("length %v, want 10", f.Length())
	}
	if f.ProcsUsed() != 2 {
		t.Fatalf("procs used %d, want 2", f.ProcsUsed())
	}
	// ToSchedule must agree with the arrays and pass the rich validator.
	s := f.ToSchedule()
	if s.Length() != f.Length() {
		t.Fatalf("ToSchedule length %v != %v", s.Length(), f.Length())
	}
	if err := Validate(c.ToGraph(), s); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFlatRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(f *Flat)
	}{
		{"short arrays", func(f *Flat) { f.Assign = f.Assign[:3] }},
		{"proc out of range", func(f *Flat) { f.Assign[2] = 2 }},
		{"negative proc", func(f *Flat) { f.Assign[0] = -1 }},
		{"negative start", func(f *Flat) { f.Start[0] = -1; f.Finish[0] = 1 }},
		{"wrong duration", func(f *Flat) { f.Finish[1] = 4 }},
		{"overlap", func(f *Flat) { f.Start[1] = 1; f.Finish[1] = 4 }},
		{"precedence same proc", func(f *Flat) { f.Start[1] = 1.5; f.Finish[1] = 4.5 }},
		{"precedence missing comm", func(f *Flat) { f.Start[2] = 2; f.Finish[2] = 3 }},
		{"nan start", func(f *Flat) { f.Start[3] = nan(); f.Finish[3] = nan() }},
	}
	for _, tc := range cases {
		c, f := flatFixture(t)
		tc.mutate(f)
		if err := ValidateFlat(c, f); err == nil {
			t.Errorf("%s: invalid schedule accepted", tc.name)
		}
	}
}

// TestValidateFlatZeroDuration pins the exclusivity exemption: tasks of
// zero duration may share an instant with running work, matching
// Validate's contract for the rich representation.
func TestValidateFlatZeroDuration(t *testing.T) {
	g := dag.New(3)
	g.AddNode("a", 2)
	g.AddNode("z", 0)
	g.AddNode("b", 2)
	c := dag.BuildCSR(g)
	f := &Flat{
		Procs:  1,
		Assign: []int32{0, 0, 0},
		Start:  []float64{0, 1, 2},
		Finish: []float64{2, 1, 4},
	}
	if err := ValidateFlat(c, f); err != nil {
		t.Fatal(err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestValidateFlatBig checks the validator's scaling contract
// (satellite of the million-node path): a 10⁵-node layered schedule
// must validate well inside a CI-friendly time budget — the sort-based
// exclusivity check is O(v log v), never the all-pairs O(v²).
func TestValidateFlatBig(t *testing.T) {
	v := 100000
	if s := os.Getenv("FASTSCHED_SCALE_V"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 1 {
			v = n
		}
	}
	if testing.Short() {
		v = 10000
	}
	c, err := workload.LayeredCSR(workload.LayeredOpts{V: v, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin list schedule over 8 processors in topological order —
	// cheap to build and legal by construction.
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	const procs = 8
	f := &Flat{
		Procs:  procs,
		Assign: make([]int32, v),
		Start:  make([]float64, v),
		Finish: make([]float64, v),
	}
	ready := make([]float64, procs)
	for i, n := range order {
		p := int32(i % procs)
		f.Assign[n] = p
		start := ready[p]
		for s := c.PredOff[n]; s < c.PredOff[n+1]; s++ {
			from := c.PredFrom[s]
			arrival := f.Finish[from]
			if f.Assign[from] != p {
				arrival += c.PredW[s]
			}
			if arrival > start {
				start = arrival
			}
		}
		f.Start[n] = start
		f.Finish[n] = start + c.NodeW[n]
		ready[p] = f.Finish[n]
	}
	begin := time.Now()
	if err := ValidateFlat(c, f); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(begin); d > 5*time.Second {
		t.Fatalf("validated %d nodes in %v, budget 5s", v, d)
	}
}
