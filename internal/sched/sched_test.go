package sched

import (
	"strings"
	"testing"

	"fastsched/internal/dag"
)

// chainGraph: a(2) --5--> b(3) --1--> c(1)
func chainGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New(3)
	a := g.AddNode("a", 2)
	b := g.AddNode("b", 3)
	c := g.AddNode("c", 1)
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(b, c, 1)
	return g
}

func TestPlaceAndQuery(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 2, 5)
	s.Place(2, 1, 6, 7)
	if s.Proc(0) != 0 || s.Start(1) != 2 || s.Finish(2) != 7 {
		t.Fatal("placement query mismatch")
	}
	if s.ProcsUsed() != 2 {
		t.Fatalf("ProcsUsed = %d", s.ProcsUsed())
	}
	if got := s.Length(); got != 7 {
		t.Fatalf("Length = %v", got)
	}
	if err := Validate(g, s); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestReplaceMovesNode(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(0, 3, 1, 3) // move
	if s.Proc(0) != 3 || s.Start(0) != 1 {
		t.Fatal("re-place did not move node")
	}
	if s.ProcsUsed() != 1 {
		t.Fatalf("ProcsUsed = %d after move", s.ProcsUsed())
	}
	if len(s.OnProc(0)) != 0 {
		t.Fatal("old processor still lists node")
	}
}

func TestOfPanicsOnUnassigned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(2)
	_ = s.Of(1)
}

func TestOnProcSortedByStart(t *testing.T) {
	s := New(3)
	s.Place(2, 0, 5, 6)
	s.Place(0, 0, 0, 1)
	s.Place(1, 0, 2, 3)
	got := s.OnProc(0)
	want := []dag.NodeID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnProc = %v", got)
		}
	}
}

func TestValidateCatchesUnassigned(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	if err := Validate(g, s); err == nil || !strings.Contains(err.Error(), "unassigned") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesWrongDuration(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 3) // weight is 2
	s.Place(1, 0, 8, 11)
	s.Place(2, 0, 11, 12)
	if err := Validate(g, s); err == nil || !strings.Contains(err.Error(), "duration") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 1, 4) // overlaps a on PE 0
	s.Place(2, 0, 5, 6)
	if err := Validate(g, s); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("err = %v", err)
	}
}

// TestValidateZeroWidthNeverOverlaps pins the zero-duration semantics
// shared with listsched.Timeline: an instantaneous task occupies no
// processor time, so its [x,x) placement is legal at any instant on a
// busy processor — including the start of a running task's interval —
// while positive-width overlaps are still caught around it. (Found by
// FuzzBatchSubmit: a zero-weight node placed at the start of another
// task's slot is accepted by the timeline but was rejected here.)
func TestValidateZeroWidthNeverOverlaps(t *testing.T) {
	g := dag.New(3)
	a := g.AddNode("a", 2)
	z := g.AddNode("z", 0)
	b := g.AddNode("b", 3)
	g.MustAddEdge(a, b, 1)

	s := New(g.NumNodes())
	s.Place(a, 0, 0, 2)
	s.Place(z, 0, 0, 0) // instantaneous, shares a's start instant
	s.Place(b, 0, 2, 5)
	if err := Validate(g, s); err != nil {
		t.Fatalf("zero-width placement rejected: %v", err)
	}

	// A real overlap between the positive-width neighbours is still an
	// error even with the zero-width task sorted between them.
	s = New(g.NumNodes())
	s.Place(a, 0, 0, 2)
	s.Place(z, 0, 1, 1)
	s.Place(b, 0, 1, 4) // collides with a
	if err := Validate(g, s); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesPrecedenceLocal(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 1.5, 4.5) // starts before parent finishes... also overlaps;
	// use separate procs to isolate precedence
	s = New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 1, 3, 6) // needs DAT 2+5=7 on remote proc
	s.Place(2, 1, 6, 7)
	if err := Validate(g, s); err == nil || !strings.Contains(err.Error(), "precedence") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateAcceptsZeroedLocalComm(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	// same processor: comm is zero, b can start right at a's finish
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 2, 5)
	s.Place(2, 0, 5, 6)
	if err := Validate(g, s); err != nil {
		t.Fatalf("co-located schedule rejected: %v", err)
	}
}

func TestValidateCatchesNegativeStart(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, -1, 1)
	s.Place(1, 0, 6, 9)
	s.Place(2, 0, 9, 10)
	if err := Validate(g, s); err == nil || !strings.Contains(err.Error(), "< 0") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateSizeMismatch(t *testing.T) {
	g := chainGraph(t)
	if err := Validate(g, New(2)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	g := chainGraph(t) // total work 6
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 2, 5)
	s.Place(2, 0, 5, 6)
	if sp := s.Speedup(g); sp != 1 {
		t.Fatalf("Speedup = %v", sp)
	}
	if ef := s.Efficiency(g); ef != 1 {
		t.Fatalf("Efficiency = %v", ef)
	}
	empty := New(g.NumNodes())
	if empty.Speedup(g) != 0 || empty.Efficiency(g) != 0 {
		t.Fatal("empty schedule metrics should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Algorithm = "X"
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 2, 5)
	s.Place(2, 0, 5, 6)
	c := s.Clone()
	c.Place(2, 7, 100, 101)
	if s.Proc(2) != 0 || s.Length() != 6 {
		t.Fatal("clone mutated original")
	}
	if c.Algorithm != "X" {
		t.Fatal("clone lost algorithm name")
	}
	if err := Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestGanttAndTableRender(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Algorithm = "FAST"
	s.Place(0, 0, 0, 2)
	s.Place(1, 1, 7, 10)
	s.Place(2, 1, 10, 11)
	out := Gantt(g, s, 40)
	for _, want := range []string{"FAST", "PE 0", "PE 1", "[a", "[b"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt missing %q:\n%s", want, out)
		}
	}
	tab := Table(g, s)
	if !strings.Contains(tab, "a") || !strings.Contains(tab, "start") {
		t.Errorf("Table output:\n%s", tab)
	}
	if out := Gantt(g, New(g.NumNodes()), 40); !strings.Contains(out, "empty") {
		t.Errorf("empty gantt = %q", out)
	}
}

func TestValidateDurations(t *testing.T) {
	g := chainGraph(t)
	// Realized durations differ from the nominal weights (jittered run):
	// a took 2.5, b took 2.8, c took 1.1.
	dur := []float64{2.5, 2.8, 1.1}
	s := New(3)
	s.Place(0, 0, 0, 2.5)
	s.Place(1, 0, 2.5, 5.3)
	s.Place(2, 1, 6.5, 7.6)
	if err := Validate(g, s); err == nil {
		t.Fatal("plain Validate accepted jittered durations")
	}
	if err := ValidateDurations(g, s, dur); err != nil {
		t.Fatalf("duration-aware validation rejected a legal run: %v", err)
	}
	// Precedence and overlap stay enforced under custom durations.
	bad := s.Clone()
	bad.Place(2, 1, 6.2, 7.3) // b finishes 5.3, +1 comm => c may not start before 6.3
	if err := ValidateDurations(g, bad, dur); err == nil {
		t.Fatal("precedence violation accepted")
	}
	if err := ValidateDurations(g, s, []float64{1}); err == nil {
		t.Fatal("mis-sized durations accepted")
	}
	if err := ValidateDurations(g, s, nil); err == nil {
		t.Fatal("nil durations must behave like plain Validate")
	}
}
