package sched

import "fastsched/internal/dag"

// Scheduler is the interface every algorithm in this repository
// implements. procs is the number of available processors; a value <= 0
// means an unbounded processor set (MD and DSC assume one by
// definition; the others treat it as "as many as needed").
type Scheduler interface {
	// Name returns the algorithm's short name (e.g. "FAST", "DSC").
	Name() string
	// Schedule assigns every node of g to a processor and time slot.
	Schedule(g *dag.Graph, procs int) (*Schedule, error)
}
