package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Algorithm = "FAST"
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 2, 5)
	s.Place(2, 1, 6, 7)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadJSON(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Algorithm != "FAST" {
		t.Fatalf("algorithm = %q", s2.Algorithm)
	}
	for i := 0; i < g.NumNodes(); i++ {
		if s.Of(0) != s2.Of(0) {
			t.Fatalf("placement %d changed", i)
		}
	}
}

func TestWriteJSONRejectsIncomplete(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err == nil {
		t.Fatal("incomplete schedule serialized")
	}
}

func TestReadJSONValidates(t *testing.T) {
	g := chainGraph(t)
	cases := map[string]string{
		"garbage":    `]]`,
		"wrong size": `{"placements":[{"node":0,"proc":0,"start":0,"finish":2}]}`,
		"bad node":   `{"placements":[{"node":9,"proc":0,"start":0,"finish":2},{"node":1,"proc":0,"start":2,"finish":5},{"node":2,"proc":0,"start":5,"finish":6}]}`,
		"dup node":   `{"placements":[{"node":0,"proc":0,"start":0,"finish":2},{"node":0,"proc":0,"start":2,"finish":4},{"node":2,"proc":0,"start":5,"finish":6}]}`,
		// violates precedence: node 1 starts before parent 0's message
		"invalid": `{"placements":[{"node":0,"proc":0,"start":0,"finish":2},{"node":1,"proc":1,"start":2,"finish":5},{"node":2,"proc":1,"start":5,"finish":6}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in), g); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
