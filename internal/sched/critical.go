package sched

import (
	"fmt"
	"strings"

	"fastsched/internal/dag"
)

// CriticalChainLink is one step of the chain of events that determines
// a schedule's makespan.
type CriticalChainLink struct {
	Node dag.NodeID
	Proc int
	// Reason explains why the node starts when it does:
	// "processor" — it waited for the previous task on its processor;
	// "message" — it waited for a parent's message (From holds it);
	// "ready" — it started the moment it appeared (chain start).
	Reason string
	// From is the constraining predecessor (the previous task on the
	// processor, or the message-sending parent), None for "ready".
	From dag.NodeID
}

// CriticalChain walks backwards from the last-finishing task and
// reports why each task on the chain starts when it does — the
// schedule's own critical path, the answer to "why is my makespan this
// long". The schedule must be valid for g.
func CriticalChain(g *dag.Graph, s *Schedule) ([]CriticalChainLink, error) {
	if err := Validate(g, s); err != nil {
		return nil, err
	}
	const eps = 1e-9
	// last-finishing task
	last := dag.None
	for i := 0; i < s.NumNodes(); i++ {
		n := dag.NodeID(i)
		if last == dag.None || s.Finish(n) > s.Finish(last) {
			last = n
		}
	}

	var chain []CriticalChainLink
	cur := last
	for {
		pl := s.Of(cur)
		link := CriticalChainLink{Node: cur, Proc: pl.Proc, Reason: "ready", From: dag.None}
		// The binding constraint: a message arriving exactly at start, or
		// the previous task on the processor finishing exactly at start.
		for _, e := range g.Pred(cur) {
			ppl := s.Of(e.From)
			arr := ppl.Finish
			if ppl.Proc != pl.Proc {
				arr += e.Weight
			}
			if arr >= pl.Start-eps {
				link.From = e.From
				if ppl.Proc != pl.Proc {
					link.Reason = "message"
				} else {
					link.Reason = "processor" // local parent result
				}
				break
			}
		}
		if link.From == dag.None {
			// previous task on the same processor?
			list := s.OnProc(pl.Proc)
			for i, n := range list {
				if n == cur && i > 0 {
					prev := s.Of(list[i-1])
					if prev.Finish >= pl.Start-eps {
						link.From = list[i-1]
						link.Reason = "processor"
					}
					break
				}
			}
		}
		chain = append(chain, link)
		if link.From == dag.None {
			break
		}
		cur = link.From
		if len(chain) > s.NumNodes() {
			return nil, fmt.Errorf("sched: critical chain did not terminate")
		}
	}
	// reverse into execution order
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

// FormatChain renders the chain with task labels.
func FormatChain(g *dag.Graph, s *Schedule, chain []CriticalChainLink) string {
	label := func(n dag.NodeID) string {
		if l := g.Label(n); l != "" {
			return l
		}
		return fmt.Sprintf("n%d", n)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical chain (%d tasks, makespan %.6g):\n", len(chain), s.Length())
	for _, link := range chain {
		pl := s.Of(link.Node)
		switch link.Reason {
		case "message":
			fmt.Fprintf(&b, "  %-10s PE %-3d [%.6g, %.6g)  waited for message from %s\n",
				label(link.Node), link.Proc, pl.Start, pl.Finish, label(link.From))
		case "processor":
			fmt.Fprintf(&b, "  %-10s PE %-3d [%.6g, %.6g)  waited for %s on the same processor\n",
				label(link.Node), link.Proc, pl.Start, pl.Finish, label(link.From))
		default:
			fmt.Fprintf(&b, "  %-10s PE %-3d [%.6g, %.6g)  started immediately\n",
				label(link.Node), link.Proc, pl.Start, pl.Finish)
		}
	}
	return b.String()
}
