package sched

import (
	"math/rand"
	"strings"
	"testing"

	"fastsched/internal/dag"
)

func TestCriticalChainMessageBound(t *testing.T) {
	g := chainGraph(t) // a(2) --5--> b(3) --1--> c(1)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 1, 7, 10) // waits for a's message (2+5)
	s.Place(2, 1, 10, 11)
	chain, err := CriticalChain(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain = %+v", chain)
	}
	if chain[0].Reason != "ready" || chain[0].Node != 0 {
		t.Fatalf("chain[0] = %+v", chain[0])
	}
	if chain[1].Reason != "message" || chain[1].From != 0 {
		t.Fatalf("chain[1] = %+v", chain[1])
	}
	if chain[2].Reason != "processor" || chain[2].From != 1 {
		t.Fatalf("chain[2] = %+v", chain[2])
	}
	out := FormatChain(g, s, chain)
	for _, want := range []string{"critical chain (3 tasks", "waited for message from a", "started immediately"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalChainProcessorBound(t *testing.T) {
	// two independent tasks serialized on one processor: the second is
	// processor-bound on the first.
	g := dag.New(2)
	g.AddNode("x", 3)
	g.AddNode("y", 4)
	s := New(2)
	s.Place(0, 0, 0, 3)
	s.Place(1, 0, 3, 7)
	chain, err := CriticalChain(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[1].Reason != "processor" || chain[1].From != 0 {
		t.Fatalf("chain = %+v", chain)
	}
}

func TestCriticalChainRejectsInvalid(t *testing.T) {
	g := chainGraph(t)
	if _, err := CriticalChain(g, New(g.NumNodes())); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

// Property: the chain is contiguous in time (each link's constraint
// binds) and starts with a task that begins at its data arrival.
func TestCriticalChainPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		// random valid schedule: serialize random graphs on 1-3 procs via
		// a trivial list placement
		g := randomScheduleGraph(rng)
		s := greedySchedule(g, 1+rng.Intn(3))
		if err := Validate(g, s); err != nil {
			t.Fatalf("trial %d: setup: %v", trial, err)
		}
		chain, err := CriticalChain(g, s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(chain) == 0 {
			t.Fatalf("trial %d: empty chain", trial)
		}
		lastLink := chain[len(chain)-1]
		if s.Finish(lastLink.Node) != s.Length() {
			t.Fatalf("trial %d: chain does not end at the makespan", trial)
		}
	}
}

// helpers for the property test (kept local to avoid an import cycle
// with the scheduler packages).
func randomScheduleGraph(rng *rand.Rand) *dag.Graph {
	v := 5 + rng.Intn(20)
	g := dag.New(v)
	for i := 0; i < v; i++ {
		g.AddNode("", 1+float64(rng.Intn(5)))
	}
	for i := 1; i < v; i++ {
		parents := 1 + rng.Intn(2)
		for j := 0; j < parents; j++ {
			p := rng.Intn(i)
			_ = g.AddEdge(dag.NodeID(p), dag.NodeID(i), float64(rng.Intn(6)))
		}
	}
	return g
}

func greedySchedule(g *dag.Graph, procs int) *Schedule {
	s := New(g.NumNodes())
	order, _ := g.TopologicalOrder()
	ready := make([]float64, procs)
	for _, n := range order {
		bestP, bestSt := 0, -1.0
		for p := 0; p < procs; p++ {
			dat := 0.0
			for _, e := range g.Pred(n) {
				arr := s.Finish(e.From)
				if s.Proc(e.From) != p {
					arr += e.Weight
				}
				if arr > dat {
					dat = arr
				}
			}
			st := dat
			if ready[p] > st {
				st = ready[p]
			}
			if bestSt < 0 || st < bestSt {
				bestP, bestSt = p, st
			}
		}
		s.Place(n, bestP, bestSt, bestSt+g.Weight(n))
		ready[bestP] = bestSt + g.Weight(n)
	}
	return s
}
