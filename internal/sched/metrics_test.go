package sched

import (
	"math"
	"testing"
)

func TestComputeMetrics(t *testing.T) {
	g := chainGraph(t) // a(2) --5--> b(3) --1--> c(1)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 1, 7, 10)
	s.Place(2, 1, 10, 11)
	m := ComputeMetrics(g, s)
	if m.Length != 11 || m.Work != 6 || m.ProcsUsed != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if math.Abs(m.Speedup-6.0/11.0) > 1e-9 {
		t.Fatalf("speedup = %v", m.Speedup)
	}
	// busy: PE0 = 2, PE1 = 4; mean 3, max 4 -> imbalance 4/3
	if math.Abs(m.LoadImbalance-4.0/3.0) > 1e-9 {
		t.Fatalf("imbalance = %v", m.LoadImbalance)
	}
	if m.CrossEdges != 1 || m.CommVolume != 5 {
		t.Fatalf("cross = %d vol %v", m.CrossEdges, m.CommVolume)
	}
}

func TestComputeMetricsSingleProc(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 2, 5)
	s.Place(2, 0, 5, 6)
	m := ComputeMetrics(g, s)
	if m.LoadImbalance != 1 || m.CrossEdges != 0 || m.CommVolume != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Efficiency != 1 {
		t.Fatalf("efficiency = %v", m.Efficiency)
	}
}
