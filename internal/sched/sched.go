// Package sched defines the schedule produced by the scheduling
// algorithms — the assignment of every task to a processor and a start
// time — together with validation against the source DAG, Gantt-chart
// rendering, and the metrics the paper reports (schedule length,
// processors used, speedup).
package sched

import (
	"fmt"
	"math"
	"sort"

	"fastsched/internal/dag"
)

// Placement records where and when one task runs.
type Placement struct {
	Node   dag.NodeID
	Proc   int
	Start  float64
	Finish float64
}

// Schedule maps every node of a DAG onto processors and time slots. The
// zero value is unusable; create schedules with New.
type Schedule struct {
	Algorithm string // name of the producing algorithm, for reports
	place     []Placement
	assigned  []bool
	procs     map[int][]dag.NodeID // per-processor node lists, kept sorted by start
	dirty     map[int]bool         // processors whose lists need re-sorting
}

// New returns an empty schedule for a graph with v nodes.
func New(v int) *Schedule {
	return &Schedule{
		place:    make([]Placement, v),
		assigned: make([]bool, v),
		procs:    make(map[int][]dag.NodeID),
		dirty:    make(map[int]bool),
	}
}

// NumNodes returns the number of slots (v of the source graph).
func (s *Schedule) NumNodes() int { return len(s.place) }

// Place assigns node n to processor proc with the given start time and
// finish time. Re-placing a node moves it.
func (s *Schedule) Place(n dag.NodeID, proc int, start, finish float64) {
	if s.assigned[n] {
		s.removeFromProc(n)
	}
	s.place[n] = Placement{Node: n, Proc: proc, Start: start, Finish: finish}
	s.assigned[n] = true
	s.procs[proc] = append(s.procs[proc], n)
	s.dirty[proc] = true
}

func (s *Schedule) removeFromProc(n dag.NodeID) {
	p := s.place[n].Proc
	list := s.procs[p]
	for i, m := range list {
		if m == n {
			s.procs[p] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.procs[p]) == 0 {
		delete(s.procs, p)
		delete(s.dirty, p)
	}
}

// Assigned reports whether node n has been placed.
func (s *Schedule) Assigned(n dag.NodeID) bool { return s.assigned[n] }

// Of returns the placement of node n. The node must be assigned.
func (s *Schedule) Of(n dag.NodeID) Placement {
	if !s.assigned[n] {
		panic(fmt.Sprintf("sched: node %d not assigned", n))
	}
	return s.place[n]
}

// Start returns the start time of node n.
func (s *Schedule) Start(n dag.NodeID) float64 { return s.Of(n).Start }

// Finish returns the finish time of node n.
func (s *Schedule) Finish(n dag.NodeID) float64 { return s.Of(n).Finish }

// Proc returns the processor of node n.
func (s *Schedule) Proc(n dag.NodeID) int { return s.Of(n).Proc }

// OnProc returns the nodes assigned to processor p ordered by start
// time. The returned slice is shared; callers must not modify it.
func (s *Schedule) OnProc(p int) []dag.NodeID {
	if s.dirty[p] {
		list := s.procs[p]
		sort.Slice(list, func(i, j int) bool {
			if s.place[list[i]].Start != s.place[list[j]].Start {
				return s.place[list[i]].Start < s.place[list[j]].Start
			}
			return list[i] < list[j]
		})
		s.dirty[p] = false
	}
	return s.procs[p]
}

// Procs returns the IDs of the processors that have at least one node,
// in increasing order.
func (s *Schedule) Procs() []int {
	out := make([]int, 0, len(s.procs))
	for p := range s.procs {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// ProcsUsed returns the number of distinct processors with work — the
// "number of processors used" metric of the paper's tables.
func (s *Schedule) ProcsUsed() int { return len(s.procs) }

// Length returns the schedule length (makespan): the maximum finish
// time over all assigned nodes. Unassigned nodes are ignored.
func (s *Schedule) Length() float64 {
	var max float64
	for i, pl := range s.place {
		if s.assigned[i] && pl.Finish > max {
			max = pl.Finish
		}
	}
	return max
}

// Speedup returns sequential work divided by schedule length.
func (s *Schedule) Speedup(g *dag.Graph) float64 {
	l := s.Length()
	if l == 0 {
		return 0
	}
	return g.TotalWork() / l
}

// Efficiency returns speedup divided by processors used.
func (s *Schedule) Efficiency(g *dag.Graph) float64 {
	p := s.ProcsUsed()
	if p == 0 {
		return 0
	}
	return s.Speedup(g) / float64(p)
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		Algorithm: s.Algorithm,
		place:     append([]Placement(nil), s.place...),
		assigned:  append([]bool(nil), s.assigned...),
		procs:     make(map[int][]dag.NodeID, len(s.procs)),
		dirty:     make(map[int]bool, len(s.dirty)),
	}
	for p, list := range s.procs {
		c.procs[p] = append([]dag.NodeID(nil), list...)
	}
	for p, d := range s.dirty {
		c.dirty[p] = d
	}
	return c
}

// Validate checks that the schedule is a legal execution of g:
//
//  1. every node is assigned exactly once;
//  2. finish = start + w(n) for every node;
//  3. no two nodes overlap on the same processor;
//  4. every node starts no earlier than each parent's finish time, plus
//     the edge's communication cost when parent and child are on
//     different processors.
func Validate(g *dag.Graph, s *Schedule) error {
	return ValidateDurations(g, s, nil)
}

// ValidateDurations is Validate with per-node realized durations: dur[n]
// replaces g.Weight(n) in the duration check, while precedence and
// overlap are still checked against the schedule's own start/finish
// times. A nil dur falls back to the graph weights (plain Validate).
//
// The crash rescheduler needs this form: a spliced schedule's executed
// prefix ran with jittered durations, so its slots match the realized
// durations rather than the nominal node weights.
func ValidateDurations(g *dag.Graph, s *Schedule, dur []float64) error {
	const eps = 1e-6
	if s.NumNodes() != g.NumNodes() {
		return fmt.Errorf("sched: schedule sized for %d nodes, graph has %d", s.NumNodes(), g.NumNodes())
	}
	if dur != nil && len(dur) != g.NumNodes() {
		return fmt.Errorf("sched: durations sized for %d nodes, graph has %d", len(dur), g.NumNodes())
	}
	for i := 0; i < g.NumNodes(); i++ {
		n := dag.NodeID(i)
		if !s.Assigned(n) {
			return fmt.Errorf("sched: node %d unassigned", n)
		}
		pl := s.Of(n)
		if pl.Start < -eps {
			return fmt.Errorf("sched: node %d starts at %v < 0", n, pl.Start)
		}
		want := g.Weight(n)
		if dur != nil {
			want = dur[i]
		}
		if math.Abs(pl.Finish-pl.Start-want) > eps {
			return fmt.Errorf("sched: node %d duration %v != expected %v", n, pl.Finish-pl.Start, want)
		}
	}
	for _, p := range s.Procs() {
		// Zero-duration tasks occupy no processor time, so they can
		// never collide with a neighbour: listsched.Timeline admits a
		// [x,x) slot at any instant where no other task is strictly
		// running, so the exclusivity check covers only the tasks with
		// positive duration (OnProc order is by start time, so
		// consecutive positive-width pairs suffice).
		var prev Placement
		havePrev := false
		for _, n := range s.OnProc(p) {
			cur := s.Of(n)
			if cur.Finish-cur.Start <= eps {
				continue
			}
			if havePrev && cur.Start < prev.Finish-eps {
				return fmt.Errorf("sched: overlap on PE %d: node %d [%v,%v) vs node %d [%v,%v)",
					p, prev.Node, prev.Start, prev.Finish, cur.Node, cur.Start, cur.Finish)
			}
			prev, havePrev = cur, true
		}
	}
	// Walk the stored successor lists directly rather than through
	// g.Edges(), which materializes an O(e) slice — on a 10⁶-node graph
	// that single allocation dwarfs the validation itself.
	for i := 0; i < g.NumNodes(); i++ {
		u := dag.NodeID(i)
		from := s.Of(u)
		for _, e := range g.Succ(u) {
			to := s.Of(e.To)
			arrival := from.Finish
			if from.Proc != to.Proc {
				arrival += e.Weight
			}
			if to.Start < arrival-eps {
				return fmt.Errorf("sched: precedence violated on edge %d->%d: child starts %v, message arrives %v",
					u, e.To, to.Start, arrival)
			}
		}
	}
	return nil
}
