package sched

import (
	"strings"
	"testing"
)

func TestSVGRendersAllTasks(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Algorithm = "FAST"
	s.Place(0, 0, 0, 2)
	s.Place(1, 1, 7, 10)
	s.Place(2, 1, 10, 11)
	out := SVG(g, s, 640)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not a complete svg:\n%s", out)
	}
	for _, want := range []string{"PE 0", "PE 1", "<title>a [0, 2)</title>", "<title>b [7, 10)</title>", "FAST schedule"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// three task rects + two lane rects
	if got := strings.Count(out, "<rect"); got != 5 {
		t.Errorf("rect count = %d, want 5", got)
	}
}

func TestSVGEmptyScheduleAndMinWidth(t *testing.T) {
	g := chainGraph(t)
	out := SVG(g, New(g.NumNodes()), 10)
	if !strings.Contains(out, "</svg>") {
		t.Fatalf("empty svg malformed:\n%s", out)
	}
	if !strings.Contains(out, `width="200"`) {
		t.Errorf("minimum width not applied:\n%s", out)
	}
}

func TestSVGDeterministic(t *testing.T) {
	g := chainGraph(t)
	s := New(g.NumNodes())
	s.Place(0, 0, 0, 2)
	s.Place(1, 0, 2, 5)
	s.Place(2, 0, 5, 6)
	if SVG(g, s, 640) != SVG(g, s, 640) {
		t.Fatal("svg output not deterministic")
	}
}
