package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"fastsched/internal/dag"
)

// jsonSchedule is the on-disk representation of a Schedule.
type jsonSchedule struct {
	Algorithm  string          `json:"algorithm,omitempty"`
	Placements []jsonPlacement `json:"placements"`
}

type jsonPlacement struct {
	Node   int     `json:"node"`
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

// WriteJSON serializes the schedule in a stable, human-diffable JSON
// form (placements in node order).
func WriteJSON(w io.Writer, s *Schedule) error {
	js := jsonSchedule{Algorithm: s.Algorithm}
	for i := 0; i < s.NumNodes(); i++ {
		n := dag.NodeID(i)
		if !s.Assigned(n) {
			return fmt.Errorf("sched: cannot serialize: node %d unassigned", n)
		}
		pl := s.Of(n)
		js.Placements = append(js.Placements, jsonPlacement{
			Node: int(pl.Node), Proc: pl.Proc, Start: pl.Start, Finish: pl.Finish,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ReadJSON parses a schedule previously written by WriteJSON and
// validates it against g.
func ReadJSON(r io.Reader, g *dag.Graph) (*Schedule, error) {
	var js jsonSchedule
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	if len(js.Placements) != g.NumNodes() {
		return nil, fmt.Errorf("sched: %d placements for a %d-node graph", len(js.Placements), g.NumNodes())
	}
	s := New(g.NumNodes())
	s.Algorithm = js.Algorithm
	for _, pl := range js.Placements {
		if pl.Node < 0 || pl.Node >= g.NumNodes() {
			return nil, fmt.Errorf("sched: placement for unknown node %d", pl.Node)
		}
		n := dag.NodeID(pl.Node)
		if s.Assigned(n) {
			return nil, fmt.Errorf("sched: duplicate placement for node %d", pl.Node)
		}
		s.Place(n, pl.Proc, pl.Start, pl.Finish)
	}
	if err := Validate(g, s); err != nil {
		return nil, err
	}
	return s, nil
}
