package sched

import (
	"fastsched/internal/dag"
)

// Metrics summarizes a schedule's quality beyond its length.
type Metrics struct {
	Length     float64 // makespan
	Work       float64 // total computation scheduled
	Speedup    float64 // Work / Length
	Efficiency float64 // Speedup / ProcsUsed
	ProcsUsed  int
	// LoadImbalance is max processor busy time divided by mean busy
	// time (1.0 = perfectly balanced).
	LoadImbalance float64
	// CrossEdges counts edges whose endpoints sit on different
	// processors; CommVolume sums their weights (the traffic the
	// machine must carry).
	CrossEdges int
	CommVolume float64
}

// ComputeMetrics derives the metrics of a complete schedule.
func ComputeMetrics(g *dag.Graph, s *Schedule) Metrics {
	m := Metrics{
		Length:     s.Length(),
		Work:       g.TotalWork(),
		ProcsUsed:  s.ProcsUsed(),
		Speedup:    s.Speedup(g),
		Efficiency: s.Efficiency(g),
	}
	var maxBusy, totalBusy float64
	for _, p := range s.Procs() {
		var busy float64
		for _, n := range s.OnProc(p) {
			busy += g.Weight(n)
		}
		totalBusy += busy
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	if m.ProcsUsed > 0 && totalBusy > 0 {
		mean := totalBusy / float64(m.ProcsUsed)
		m.LoadImbalance = maxBusy / mean
	}
	for _, e := range g.Edges() {
		if s.Proc(e.From) != s.Proc(e.To) {
			m.CrossEdges++
			m.CommVolume += e.Weight
		}
	}
	return m
}
