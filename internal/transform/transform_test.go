package transform

import (
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/fast"
	"fastsched/internal/frontend"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
	"fastsched/internal/workload"
)

func TestTransitiveReductionDropsImpliedEdge(t *testing.T) {
	// a -> b -> c plus redundant zero-weight a -> c.
	g := dag.New(3)
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	c := g.AddNode("c", 1)
	g.MustAddEdge(a, b, 2)
	g.MustAddEdge(b, c, 2)
	g.MustAddEdge(a, c, 0)
	out, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", out.NumEdges())
	}
	if _, ok := out.EdgeWeight(a, c); ok {
		t.Fatal("implied edge survived")
	}
}

func TestTransitiveReductionKeepsWeightedEdges(t *testing.T) {
	// same shape but a -> c carries data: it must survive.
	g := dag.New(3)
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	c := g.AddNode("c", 1)
	g.MustAddEdge(a, b, 2)
	g.MustAddEdge(b, c, 2)
	g.MustAddEdge(a, c, 5)
	out, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", out.NumEdges())
	}
}

// Frontend anti/output edges are the natural clients: reduction shrinks
// the graph without changing schedules.
func TestReductionOnFrontendGraph(t *testing.T) {
	p := frontend.NewProgram(1).
		Task("w1", 2, nil, []string{"x"}).
		Task("r1", 2, []string{"x"}, nil).
		Task("r2", 2, []string{"x"}, nil).
		Task("w2", 2, []string{"x"}, []string{"x"})
	g, err := p.BuildDAG()
	if err != nil {
		t.Fatal(err)
	}
	out, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEdges() > g.NumEdges() {
		t.Fatal("reduction grew the graph")
	}
	// schedules of the reduced graph satisfy the original constraints up
	// to the removed (implied) edges: schedule the reduced graph, then
	// check lengths agree with scheduling the original.
	s1, err := fast.Default().Schedule(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fast.Default().Schedule(out, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(out, s2); err != nil {
		t.Fatal(err)
	}
	if s2.Length() > s1.Length()+1e-9 {
		t.Fatalf("reduction hurt the schedule: %v vs %v", s2.Length(), s1.Length())
	}
}

// Property: reduction never removes a weighted edge, never changes node
// data, and preserves reachability.
func TestReductionPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		g := schedtest.RandomLayered(rng, 2+rng.Intn(40))
		// zero out a third of the edges to create reduction candidates
		for i, e := range g.Edges() {
			if i%3 == 0 {
				g.SetEdgeWeight(e.From, e.To, 0)
			}
		}
		out, err := TransitiveReduction(g)
		if err != nil {
			t.Fatal(err)
		}
		if out.NumNodes() != g.NumNodes() {
			t.Fatal("node count changed")
		}
		before := reachability(g)
		after := reachability(out)
		for i := range before {
			for j := range before[i] {
				if before[i][j] != after[i][j] {
					t.Fatalf("trial %d: reachability %d->%d changed", trial, i, j)
				}
			}
		}
		for _, e := range g.Edges() {
			if e.Weight > 0 {
				if _, ok := out.EdgeWeight(e.From, e.To); !ok {
					t.Fatalf("trial %d: weighted edge %d->%d removed", trial, e.From, e.To)
				}
			}
		}
	}
}

func reachability(g *dag.Graph) [][]bool {
	v := g.NumNodes()
	r := make([][]bool, v)
	order, _ := g.TopologicalOrder()
	for i := range r {
		r[i] = make([]bool, v)
	}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		for _, e := range g.Succ(n) {
			r[n][e.To] = true
			for j := 0; j < v; j++ {
				if r[e.To][j] {
					r[n][j] = true
				}
			}
		}
	}
	return r
}

func TestGrainPackFusesChains(t *testing.T) {
	// a fine-grained chain of 6 unit tasks packs into grains of <= 3.
	g := workload.Chain(6, 1, 10)
	res, err := GrainPack(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() != 2 {
		t.Fatalf("packed nodes = %d, want 2", res.Graph.NumNodes())
	}
	if res.Graph.TotalWork() != g.TotalWork() {
		t.Fatalf("work changed: %v vs %v", res.Graph.TotalWork(), g.TotalWork())
	}
	// membership covers every original node exactly once
	seen := map[dag.NodeID]bool{}
	for _, ms := range res.Members {
		for _, m := range ms {
			if seen[m] {
				t.Fatalf("node %d packed twice", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("%d of 6 nodes covered", len(seen))
	}
}

func TestGrainPackRespectsMaxGrain(t *testing.T) {
	g := workload.Chain(5, 2, 1)
	res, err := GrainPack(g, 4) // grains of at most 2 tasks
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Graph.Nodes() {
		if n.Weight > 4 {
			t.Fatalf("grain %q weight %v exceeds max", n.Label, n.Weight)
		}
	}
	if _, err := GrainPack(g, 0); err == nil {
		t.Fatal("maxGrain 0 accepted")
	}
}

func TestGrainPackLeavesBranchesAlone(t *testing.T) {
	// fork-join: no node pair is a 1-1 chain except entry->nothing;
	// packing must keep the diamond intact (the entry has 2 children).
	g := workload.ForkJoin(2, 1, 1, 1, 5)
	res, err := GrainPack(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	// entry can't fuse (2 children); middles can't fuse into exit (exit
	// has 2 parents). Nothing fuses.
	if res.Graph.NumNodes() != g.NumNodes() {
		t.Fatalf("packed %d nodes from a diamond of %d", res.Graph.NumNodes(), g.NumNodes())
	}
}

// Packing a fine-grained chain-heavy graph must not hurt the schedule
// produced for it, and typically helps the scheduler's wall time by
// shrinking v and e.
func TestGrainPackScheduleQuality(t *testing.T) {
	// 40 chains of 5 tiny tasks hanging off one root.
	g := dag.New(0)
	root := g.AddNode("root", 1)
	for c := 0; c < 40; c++ {
		prev := root
		for i := 0; i < 5; i++ {
			id := g.AddNode("", 1)
			g.MustAddEdge(prev, id, 8)
			prev = id
		}
	}
	res, err := GrainPack(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() >= g.NumNodes() {
		t.Fatal("nothing packed")
	}
	sFine, err := fast.Default().Schedule(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	sCoarse, err := fast.Default().Schedule(res.Graph, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(res.Graph, sCoarse); err != nil {
		t.Fatal(err)
	}
	if sCoarse.Length() > sFine.Length()+1e-9 {
		t.Fatalf("packing hurt the schedule: %v vs %v", sCoarse.Length(), sFine.Length())
	}
}
