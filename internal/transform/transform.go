// Package transform provides the graph transformations a scheduling
// front end applies before handing a task graph to the scheduler:
//
//   - TransitiveReduction removes precedence edges implied by longer
//     paths (the frontend's conservative anti/output edges often are),
//     shrinking e without changing any legal schedule's constraints —
//     valuable for an O(e) scheduler;
//   - GrainPack coarsens chains of tiny tasks into single tasks
//     (Sarkar-style grain packing), trading exposed parallelism for
//     lower scheduling and communication overhead.
package transform

import (
	"fmt"

	"fastsched/internal/dag"
)

// TransitiveReduction returns a copy of g with every zero-weight edge
// that is implied by another path removed. Only zero-weight edges are
// candidates: an edge carrying communication is a real message and must
// survive even when a longer path exists. The result constrains
// exactly the same schedules as the input.
func TransitiveReduction(g *dag.Graph) (*dag.Graph, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	v := g.NumNodes()
	pos := make([]int, v)
	for i, n := range order {
		pos[n] = i
	}

	// reach[i] = set of nodes reachable from i via >= 2 edges would be
	// ideal; simpler: full reachability, then drop zero-weight edges
	// (u,w) when some other successor of u reaches w.
	reach := make([]map[dag.NodeID]bool, v)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		r := make(map[dag.NodeID]bool)
		for _, e := range g.Succ(n) {
			r[e.To] = true
			for m := range reach[e.To] {
				r[m] = true
			}
		}
		reach[n] = r
	}

	out := dag.New(v)
	for _, n := range g.Nodes() {
		out.AddNode(n.Label, n.Weight)
	}
	for _, n := range g.Nodes() {
		for _, e := range g.Succ(n.ID) {
			if e.Weight == 0 && reachableAvoiding(g, reach, n.ID, e.To) {
				continue // implied by a longer path: drop
			}
			out.MustAddEdge(e.From, e.To, e.Weight)
		}
	}
	return out, nil
}

// reachableAvoiding reports whether target is reachable from src
// through some successor other than the direct edge src->target.
func reachableAvoiding(g *dag.Graph, reach []map[dag.NodeID]bool, src, target dag.NodeID) bool {
	for _, e := range g.Succ(src) {
		if e.To != target && reach[e.To][target] {
			return true
		}
	}
	return false
}

// PackResult maps the packed graph back to the original tasks.
type PackResult struct {
	// Graph is the coarsened task graph.
	Graph *dag.Graph
	// Members lists, for every packed node, the original node IDs it
	// absorbed in execution order.
	Members [][]dag.NodeID
}

// GrainPack merges linear chains of small tasks: a node with exactly
// one child whose child has exactly one parent is fused with that child
// when their combined weight stays within maxGrain. Edge weights
// between fused tasks disappear (they become local); the fused node's
// weight is the sum. Packing repeats until no fusable pair remains.
func GrainPack(g *dag.Graph, maxGrain float64) (*PackResult, error) {
	if maxGrain <= 0 {
		return nil, fmt.Errorf("transform: maxGrain must be positive, got %v", maxGrain)
	}
	if _, err := g.TopologicalOrder(); err != nil {
		return nil, err
	}
	v := g.NumNodes()
	// Union-style representative per original node; members in order.
	members := make([][]dag.NodeID, v)
	weight := make([]float64, v)
	alive := make([]bool, v)
	for i := 0; i < v; i++ {
		members[i] = []dag.NodeID{dag.NodeID(i)}
		weight[i] = g.Weight(dag.NodeID(i))
		alive[i] = true
	}
	// Current adjacency between groups, by representative.
	succ := make([]map[int]float64, v)
	pred := make([]map[int]float64, v)
	for i := 0; i < v; i++ {
		succ[i] = map[int]float64{}
		pred[i] = map[int]float64{}
	}
	for _, e := range g.Edges() {
		// Parallel edges cannot occur in dag.Graph; direct copy.
		succ[e.From][int(e.To)] = e.Weight
		pred[e.To][int(e.From)] = e.Weight
	}

	merge := func(a, b int) { // fuse b into a (a -> b chain edge)
		delete(succ[a], b)
		delete(pred[b], a)
		for c, w := range succ[b] {
			if cur, ok := succ[a][c]; !ok || w > cur {
				succ[a][c] = w
				pred[c][a] = w
			}
			delete(pred[c], b)
		}
		members[a] = append(members[a], members[b]...)
		weight[a] += weight[b]
		alive[b] = false
	}

	for changed := true; changed; {
		changed = false
		for a := 0; a < v; a++ {
			// Accumulate along the chain hanging off a until the grain
			// limit or a branch stops it (the classic chain walk).
			for alive[a] && len(succ[a]) == 1 {
				var b int
				for c := range succ[a] {
					b = c
				}
				if len(pred[b]) != 1 || weight[a]+weight[b] > maxGrain {
					break
				}
				merge(a, b)
				changed = true
			}
		}
	}

	// Build the packed graph with dense IDs in topological-ish order
	// (original ID order of representatives keeps it deterministic).
	idOf := make(map[int]dag.NodeID)
	out := dag.New(0)
	var outMembers [][]dag.NodeID
	for i := 0; i < v; i++ {
		if !alive[i] {
			continue
		}
		label := g.Label(dag.NodeID(i))
		if len(members[i]) > 1 {
			label = fmt.Sprintf("%s+%d", label, len(members[i])-1)
		}
		idOf[i] = out.AddNode(label, weight[i])
		outMembers = append(outMembers, members[i])
	}
	for i := 0; i < v; i++ {
		if !alive[i] {
			continue
		}
		for c, w := range succ[i] {
			if err := out.AddEdge(idOf[i], idOf[c], w); err != nil {
				return nil, fmt.Errorf("transform: %w", err)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("transform: packed graph invalid: %w", err)
	}
	return &PackResult{Graph: out, Members: outMembers}, nil
}
