package example

import (
	"testing"

	"fastsched/internal/dag"
)

func TestGraphShape(t *testing.T) {
	g := Graph()
	if g.NumNodes() != 9 || g.NumEdges() != 14 {
		t.Fatalf("shape = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsWeaklyConnected() {
		t.Fatal("example graph must be connected")
	}
	if g.Label(N(7)) != "n7" {
		t.Fatalf("label of n7 = %q", g.Label(N(7)))
	}
}

// The paper's textual constraints on Figure 1, asserted exactly.
func TestPaperLevelConstraints(t *testing.T) {
	g := Graph()
	l, err := dag.ComputeLevels(g)
	if err != nil {
		t.Fatal(err)
	}
	wantT := []float64{0, 6, 3, 3, 3, 10, 12, 11, 22}
	wantB := []float64{23, 15, 15, 15, 18, 10, 11, 10, 1}
	for i := range wantT {
		if l.TLevel[i] != wantT[i] {
			t.Errorf("t-level n%d = %v, want %v", i+1, l.TLevel[i], wantT[i])
		}
		if l.BLevel[i] != wantB[i] {
			t.Errorf("b-level n%d = %v, want %v", i+1, l.BLevel[i], wantB[i])
		}
	}
	if l.CPLen != 23 {
		t.Fatalf("CP length = %v, want 23", l.CPLen)
	}
}

func TestPaperClassification(t *testing.T) {
	g := Graph()
	l, _ := dag.ComputeLevels(g)
	cls := dag.Classify(g, l)
	wantCPN := map[dag.NodeID]bool{N(1): true, N(7): true, N(9): true}
	for i := 0; i < 9; i++ {
		n := dag.NodeID(i)
		if wantCPN[n] && cls[n] != dag.CPN {
			t.Errorf("n%d class = %v, want CPN", i+1, cls[n])
		}
		if !wantCPN[n] && cls[n] != dag.IBN {
			t.Errorf("n%d class = %v, want IBN (paper: no OBN)", i+1, cls[n])
		}
	}
	cp := dag.CriticalPath(g, l)
	want := []dag.NodeID{N(1), N(7), N(9)}
	if len(cp) != 3 {
		t.Fatalf("CP = %v", cp)
	}
	for i := range want {
		if cp[i] != want[i] {
			t.Fatalf("CP = %v, want n1,n7,n9", cp)
		}
	}
}

// The tie-break the paper calls out: parents n6 and n8 of n9 have equal
// b-levels and n6 has the smaller t-level.
func TestPaperTieBreakConstraint(t *testing.T) {
	g := Graph()
	l, _ := dag.ComputeLevels(g)
	if l.BLevel[N(6)] != l.BLevel[N(8)] {
		t.Fatalf("b-levels of n6 (%v) and n8 (%v) must tie", l.BLevel[N(6)], l.BLevel[N(8)])
	}
	if l.TLevel[N(6)] >= l.TLevel[N(8)] {
		t.Fatalf("t-level of n6 (%v) must be below n8's (%v)", l.TLevel[N(6)], l.TLevel[N(8)])
	}
	// Similarly n3 precedes n2 when expanding n7's parents.
	if l.BLevel[N(3)] != l.BLevel[N(2)] || l.TLevel[N(3)] >= l.TLevel[N(2)] {
		t.Fatalf("n3/n2 ordering constraint violated: b %v/%v t %v/%v",
			l.BLevel[N(3)], l.BLevel[N(2)], l.TLevel[N(3)], l.TLevel[N(2)])
	}
}
