// Package example provides the reconstructed Figure-1 task graph of the
// FAST paper. The original figure's weights exist only as an image; the
// graph here is derived from every constraint the paper's text states
// and is proven to satisfy them by this package's tests:
//
//   - the CPNs are {n1, n7, n9} and the blocking list (IBNs + OBNs) is
//     {n2, n3, n4, n5, n6, n8} with no OBN;
//   - the CPN-Dominate list is {n1, n3, n2, n7, n6, n5, n4, n8, n9};
//   - n8 is considered after n6 because their b-levels tie and n6 has
//     the smaller t-level.
package example

import "fastsched/internal/dag"

// Graph returns the 9-node reconstructed Figure-1 DAG. Node IDs are
// 0..8 for n1..n9.
//
//	w:  n1=2 n2=3 n3=3 n4=4 n5=5 n6=4 n7=4 n8=4 n9=1
//	c:  (1,2)=4 (1,3)=1 (1,4)=1 (1,5)=1 (1,7)=10
//	    (2,6)=1 (2,7)=1 (3,7)=1 (3,8)=1 (4,8)=1 (5,8)=3
//	    (6,9)=5 (7,9)=6 (8,9)=5
//
// Critical path: n1 -> n7 -> n9 with length 23.
func Graph() *dag.Graph {
	g := dag.New(9)
	weights := []float64{2, 3, 3, 4, 5, 4, 4, 4, 1}
	ids := make([]dag.NodeID, 9)
	for i, w := range weights {
		ids[i] = g.AddNode(labelOf(i), w)
	}
	type edge struct {
		from, to int // 1-based node numbers as in the paper
		w        float64
	}
	for _, e := range []edge{
		{1, 2, 4}, {1, 3, 1}, {1, 4, 1}, {1, 5, 1}, {1, 7, 10},
		{2, 6, 1}, {2, 7, 1},
		{3, 7, 1}, {3, 8, 1},
		{4, 8, 1},
		{5, 8, 3},
		{6, 9, 5}, {7, 9, 6}, {8, 9, 5},
	} {
		g.MustAddEdge(ids[e.from-1], ids[e.to-1], e.w)
	}
	return g
}

// N returns the NodeID of the paper's n<k> (1-based).
func N(k int) dag.NodeID { return dag.NodeID(k - 1) }

func labelOf(i int) string {
	return "n" + string(rune('1'+i))
}
