package listsched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fastsched/internal/dag"
)

// earliestStartLinear is the pre-binary-search reference: a full gap
// walk from the front of the timeline. EarliestStart must return
// bit-identical values (same floats, not just equal-within-epsilon).
func (t *Timeline) earliestStartLinear(dat, duration float64) float64 {
	prevEnd := 0.0
	for _, s := range t.slots {
		gapStart := math.Max(prevEnd, dat)
		if gapStart+duration <= s.Start+1e-12 {
			return gapStart
		}
		prevEnd = math.Max(prevEnd, s.Finish)
	}
	return math.Max(prevEnd, dat)
}

// randomTimeline builds a timeline of n busy slots with random-length
// idle gaps (some zero-width) between them, including zero-duration
// slots — the AddZeroSink transform schedules zero-weight nodes, so
// degenerate slots occur in real runs.
func randomTimeline(rng *rand.Rand, n int) *Timeline {
	t := &Timeline{}
	at := 0.0
	prevZero := false
	for i := 0; i < n; i++ {
		gap := float64(rng.Intn(4)) // gap, possibly zero
		if prevZero && gap == 0 {
			gap = 0.5 // TryInsert rejects a start colliding with a zero slot
		}
		at += gap
		d := float64(rng.Intn(5)) // duration, possibly zero
		t.Insert(dag.NodeID(i), at, d)
		at += d
		prevZero = d == 0
	}
	return t
}

func TestEarliestStartMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tl := randomTimeline(rng, rng.Intn(40))
		for probe := 0; probe < 50; probe++ {
			dat := float64(rng.Intn(120)) / 2
			dur := float64(rng.Intn(8))
			got := tl.EarliestStart(dat, dur)
			want := tl.earliestStartLinear(dat, dur)
			if got != want {
				t.Fatalf("trial %d: EarliestStart(%v, %v) = %v, linear scan = %v\nslots: %+v",
					trial, dat, dur, got, want, tl.Slots())
			}
		}
	}
}

// Removing and re-inserting slots must keep prefMax consistent with
// the slot array — the differential check re-runs after each edit.
func TestEarliestStartAfterRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tl := randomTimeline(rng, 20)
		for edit := 0; edit < 10; edit++ {
			victim := dag.NodeID(rng.Intn(20))
			removed := tl.Remove(victim)
			for probe := 0; probe < 20; probe++ {
				dat, dur := float64(rng.Intn(100))/2, float64(rng.Intn(6))
				if got, want := tl.EarliestStart(dat, dur), tl.earliestStartLinear(dat, dur); got != want {
					t.Fatalf("trial %d edit %d: got %v, want %v", trial, edit, got, want)
				}
			}
			if removed {
				// Re-insert at the earliest fitting start, as the list
				// schedulers would. EarliestStart can return a start that
				// coincides with a zero-width slot, which TryInsert rejects
				// (a long-standing quirk of the degenerate-slot handling,
				// identical under the old linear scan) — tolerate that and
				// move on; the differential probes above are the real check.
				d := float64(rng.Intn(5))
				s := tl.EarliestStart(float64(rng.Intn(60)), d)
				if err := tl.TryInsert(victim, s, d); err != nil && !errors.Is(err, ErrOverlap) {
					t.Fatalf("trial %d edit %d: unexpected TryInsert error: %v", trial, edit, err)
				}
			}
		}
	}
}

// benchTimeline builds a long fragmented timeline: busy slots of width
// 2 separated by width-1 gaps that a duration-2 task can never use.
func benchTimeline(n int) *Timeline {
	t := &Timeline{}
	for i := 0; i < n; i++ {
		t.Insert(dag.NodeID(i), float64(3*i), 2)
	}
	return t
}

// BenchmarkEarliestStart measures the insertion probe on long
// timelines with a late DAT — the case the binary search collapses
// from O(n) to O(log n): every slot before the DAT is skipped without
// being walked.
func BenchmarkEarliestStart(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		tl := benchTimeline(n)
		dat := float64(3*n) * 0.9 // deep into the timeline
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkF64 = tl.EarliestStart(dat, 2)
			}
		})
	}
}

// BenchmarkEarliestStartLinear is the pre-PR reference walk over the
// same workloads, kept so bench.sh can report the speedup.
func BenchmarkEarliestStartLinear(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		tl := benchTimeline(n)
		dat := float64(3*n) * 0.9
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkF64 = tl.earliestStartLinear(dat, 2)
			}
		})
	}
}

var sinkF64 float64

func sizeName(n int) string {
	switch n {
	case 16:
		return "slots=16"
	case 256:
		return "slots=256"
	default:
		return "slots=4096"
	}
}

// TestZeroWidthSlotNeverBlocks pins the zero-duration semantics: a
// [x,x) slot occupies no time, so an insertion starting exactly at x
// must succeed (found by FuzzBatchSubmit — a zero-weight task's slot
// used to collide with its successor and trip the Insert invariant).
func TestZeroWidthSlotNeverBlocks(t *testing.T) {
	var tl Timeline
	tl.Insert(0, 0, 0) // zero-weight task at t=0
	if s := tl.EarliestStart(0, 1); s != 0 {
		t.Fatalf("EarliestStart = %v, want 0", s)
	}
	tl.Insert(1, 0, 1) // must not collide with the zero-width slot
	if got := tl.ReadyTime(); got != 1 {
		t.Fatalf("ReadyTime = %v, want 1", got)
	}
	// A second zero-width task shares the same instant.
	tl.Insert(2, 0, 0)
	// But a zero-width slot still cannot land inside an occupied
	// interval, and real overlaps are still rejected.
	if err := tl.TryInsert(3, 0.5, 0); err == nil {
		t.Fatal("zero-width insert inside an occupied interval succeeded")
	}
	if err := tl.TryInsert(4, 0.5, 2); err == nil {
		t.Fatal("overlapping insert succeeded")
	}
}
