package listsched

import (
	"sync/atomic"

	"fastsched/internal/obs"
)

// Metrics is the telemetry of the list-scheduling machinery: how often
// insertion-based placement actually exploits an interior idle gap
// versus appending at the ready time, how often the DAT cache answers
// from its per-processor override versus the shared default, and the
// ready-list sizes the priority schedulers (ETF, DLS, HLFET) sweep per
// step.
type Metrics struct {
	InsertGapHits  *obs.Counter
	InsertAppends  *obs.Counter
	DATCacheHits   *obs.Counter
	DATCacheShared *obs.Counter
	ReadyList      *obs.Histogram
}

// enabled holds the active metric set. The package hands out Timelines
// and DATCaches with no configuration hook, so the metrics are a
// package-level switch: an atomic pointer keeps EnableMetrics safe
// against concurrent schedulers, and a nil pointer (the default) makes
// every probe a single load-and-branch with zero allocations.
var enabled atomic.Pointer[Metrics]

// EnableMetrics routes the package's telemetry into sink; a nil sink
// disables it again. Counters already handed out keep aggregating into
// the previous sink, so enable before scheduling starts.
func EnableMetrics(sink obs.Sink) {
	if sink == nil {
		enabled.Store(nil)
		return
	}
	enabled.Store(&Metrics{
		InsertGapHits:  sink.Counter("listsched.insert.gap_hits"),
		InsertAppends:  sink.Counter("listsched.insert.appends"),
		DATCacheHits:   sink.Counter("listsched.datcache.proc_hits"),
		DATCacheShared: sink.Counter("listsched.datcache.shared"),
		ReadyList:      sink.Histogram("listsched.ready_list_len", obs.ExpBuckets(1, 2, 12)),
	})
}

// ObserveReadyList records the size of a scheduler's ready list at one
// selection step. No-op while metrics are disabled.
func ObserveReadyList(n int) {
	if m := enabled.Load(); m != nil {
		m.ReadyList.Observe(float64(n))
	}
}
