package listsched

import (
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/obs"
	"fastsched/internal/sched"
)

// obsGraph builds a three-node fork whose two children have different
// parents' processors, so DAT answers from both the per-processor map
// and the shared default.
func obsGraph(t *testing.T) (*dag.Graph, *sched.Schedule, dag.NodeID) {
	t.Helper()
	g := dag.New(3)
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	c := g.AddNode("c", 1)
	g.MustAddEdge(a, c, 5)
	g.MustAddEdge(b, c, 3)
	s := sched.New(3)
	s.Place(a, 0, 0, 1)
	s.Place(b, 1, 0, 1)
	return g, s, c
}

// TestMetricsRouting proves EnableMetrics switches the package
// telemetry on and off: probes count while enabled and freeze once
// disabled.
func TestMetricsRouting(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	tl := &Timeline{}
	tl.Insert(0, 0, 2)
	tl.Insert(1, 10, 2)
	if got := tl.EarliestStart(2, 3); got != 2 {
		t.Fatalf("gap start = %v, want 2", got)
	}
	if got := tl.EarliestStart(0, 50); got != 12 {
		t.Fatalf("append start = %v, want 12", got)
	}

	g, s, c := obsGraph(t)
	cache := NewDATCache(g, s, c)
	cache.DAT(0) // parent a's processor: per-proc override
	cache.DAT(7) // empty processor: shared default

	ObserveReadyList(4)
	ObserveReadyList(2)

	checks := []struct {
		name string
		want int64
	}{
		{"listsched.insert.gap_hits", 1},
		{"listsched.insert.appends", 1},
		{"listsched.datcache.proc_hits", 1},
		{"listsched.datcache.shared", 1},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := reg.Histogram("listsched.ready_list_len", nil).Count(); got != 2 {
		t.Errorf("ready_list_len count = %d, want 2", got)
	}

	// After disabling, the probes must stop counting.
	EnableMetrics(nil)
	tl.EarliestStart(2, 3)
	cache.DAT(0)
	ObserveReadyList(9)
	if got := reg.Counter("listsched.insert.gap_hits").Value(); got != 1 {
		t.Errorf("gap_hits moved to %d after disable", got)
	}
	if got := reg.Histogram("listsched.ready_list_len", nil).Count(); got != 2 {
		t.Errorf("ready_list_len moved to %d after disable", got)
	}
}

// TestDisabledProbesAllocationFree asserts that the disabled metric
// path of the list-scheduling hot loops — slot search and DAT lookup —
// is a single atomic load with zero allocations.
func TestDisabledProbesAllocationFree(t *testing.T) {
	EnableMetrics(nil)
	tl := &Timeline{}
	tl.Insert(0, 0, 2)
	tl.Insert(1, 10, 2)
	g, s, c := obsGraph(t)
	cache := NewDATCache(g, s, c)

	if avg := testing.AllocsPerRun(100, func() {
		tl.EarliestStart(2, 3)
		tl.EarliestStart(0, 50)
	}); avg != 0 {
		t.Errorf("EarliestStart with metrics disabled: %v allocs/run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		cache.DAT(0)
		cache.DAT(7)
	}); avg != 0 {
		t.Errorf("DATCache.DAT with metrics disabled: %v allocs/run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		ObserveReadyList(5)
	}); avg != 0 {
		t.Errorf("ObserveReadyList with metrics disabled: %v allocs/run, want 0", avg)
	}
}
