package listsched

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/sched"
)

func TestTimelineReadyTime(t *testing.T) {
	tl := &Timeline{}
	if tl.ReadyTime() != 0 {
		t.Fatal("empty timeline ready time != 0")
	}
	tl.Insert(0, 0, 3)
	tl.Insert(1, 5, 2)
	if tl.ReadyTime() != 7 {
		t.Fatalf("ReadyTime = %v", tl.ReadyTime())
	}
	if tl.Len() != 2 {
		t.Fatalf("Len = %d", tl.Len())
	}
}

func TestEarliestStartFindsGap(t *testing.T) {
	tl := &Timeline{}
	tl.Insert(0, 0, 2)
	tl.Insert(1, 10, 2)
	// gap [2,10): a task of duration 3 with dat 1 fits at 2
	if got := tl.EarliestStart(1, 3); got != 2 {
		t.Fatalf("EarliestStart = %v, want 2", got)
	}
	// dat inside the gap
	if got := tl.EarliestStart(4, 3); got != 4 {
		t.Fatalf("EarliestStart = %v, want 4", got)
	}
	// too long for the gap: goes after the last slot
	if got := tl.EarliestStart(1, 9); got != 12 {
		t.Fatalf("EarliestStart = %v, want 12", got)
	}
	// exact fit in gap
	if got := tl.EarliestStart(2, 8); got != 2 {
		t.Fatalf("EarliestStart exact = %v, want 2", got)
	}
}

func TestEarliestStartAppendIgnoresGaps(t *testing.T) {
	tl := &Timeline{}
	tl.Insert(0, 0, 2)
	tl.Insert(1, 10, 2)
	if got := tl.EarliestStartAppend(1); got != 12 {
		t.Fatalf("append start = %v, want 12", got)
	}
	if got := tl.EarliestStartAppend(20); got != 20 {
		t.Fatalf("append start = %v, want 20", got)
	}
}

func TestInsertKeepsOrderAndDetectsOverlap(t *testing.T) {
	tl := &Timeline{}
	tl.Insert(2, 6, 2)
	tl.Insert(0, 0, 2)
	tl.Insert(1, 3, 2)
	starts := []float64{}
	for _, s := range tl.Slots() {
		starts = append(starts, s.Start)
	}
	if !sort.Float64sAreSorted(starts) {
		t.Fatalf("slots unsorted: %v", starts)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overlap with previous not caught")
			}
		}()
		tl.Insert(9, 1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overlap with next not caught")
			}
		}()
		tl.Insert(9, 2.5, 2)
	}()
}

func TestRemove(t *testing.T) {
	tl := &Timeline{}
	tl.Insert(0, 0, 1)
	tl.Insert(1, 2, 1)
	if !tl.Remove(0) {
		t.Fatal("Remove existing failed")
	}
	if tl.Remove(0) {
		t.Fatal("Remove reported success twice")
	}
	if tl.Len() != 1 || tl.Slots()[0].Node != 1 {
		t.Fatal("wrong slot removed")
	}
}

func TestMachineBounded(t *testing.T) {
	m := NewMachine(2)
	if !m.Bounded() || m.NumProcs() != 2 {
		t.Fatal("bounded machine misconfigured")
	}
	if f := m.FreshProc(); f != 0 {
		t.Fatalf("FreshProc = %d", f)
	}
	m.Proc(0).Insert(0, 0, 1)
	if f := m.FreshProc(); f != 1 {
		t.Fatalf("FreshProc = %d", f)
	}
	m.Proc(1).Insert(1, 0, 1)
	if f := m.FreshProc(); f != -1 {
		t.Fatalf("FreshProc on full machine = %d", f)
	}
	if m.NumProcs() != 2 {
		t.Fatal("bounded machine grew")
	}
}

func TestMachineUnbounded(t *testing.T) {
	m := NewMachine(0)
	if m.Bounded() {
		t.Fatal("unbounded machine reports bounded")
	}
	m.Proc(m.FreshProc()).Insert(0, 0, 1)
	f := m.FreshProc()
	if f != 1 {
		t.Fatalf("FreshProc = %d", f)
	}
	if m.NumProcs() != 2 {
		t.Fatalf("NumProcs = %d", m.NumProcs())
	}
}

func TestDATAndCandidates(t *testing.T) {
	g := dag.New(3)
	a := g.AddNode("a", 2)
	b := g.AddNode("b", 2)
	c := g.AddNode("c", 1)
	g.MustAddEdge(a, c, 5)
	g.MustAddEdge(b, c, 1)
	s := sched.New(3)
	s.Place(a, 0, 0, 2)
	s.Place(b, 1, 0, 2)
	// on PE 0: a local (2), b remote (2+1=3) -> 3
	if got := DAT(g, s, c, 0); got != 3 {
		t.Fatalf("DAT on 0 = %v", got)
	}
	// on PE 1: a remote (7), b local (2) -> 7
	if got := DAT(g, s, c, 1); got != 7 {
		t.Fatalf("DAT on 1 = %v", got)
	}
	// on PE 2: both remote -> 7
	if got := DAT(g, s, c, 2); got != 7 {
		t.Fatalf("DAT on 2 = %v", got)
	}

	m := NewMachine(4)
	m.Proc(0).Insert(a, 0, 2)
	m.Proc(1).Insert(b, 0, 2)
	cands := CandidateProcs(g, s, m, c)
	want := []int{0, 1, 2} // parents' procs + fresh
	if len(cands) != len(want) {
		t.Fatalf("candidates = %v", cands)
	}
	for i := range want {
		if cands[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", cands, want)
		}
	}
}

func TestCandidateProcsEntryNodeFullMachine(t *testing.T) {
	g := dag.New(1)
	a := g.AddNode("a", 1)
	s := sched.New(1)
	m := NewMachine(2)
	m.Proc(0).Insert(7, 0, 1)
	m.Proc(1).Insert(8, 0, 1)
	cands := CandidateProcs(g, s, m, a)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want both processors", cands)
	}
}

// Property: EarliestStart never returns a time before dat, and inserting
// at the returned time never panics (i.e. the slot really is free).
func TestEarliestStartInsertProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		tl := &Timeline{}
		for i := 0; i < 30; i++ {
			dat := float64(rng.Intn(50))
			dur := 0.5 + float64(rng.Intn(5))
			start := tl.EarliestStart(dat, dur)
			if start < dat-1e-12 {
				t.Fatalf("trial %d: start %v < dat %v", trial, start, dat)
			}
			tl.Insert(dag.NodeID(i), start, dur) // panics on overlap
		}
		// final timeline must be sorted and non-overlapping
		slots := tl.Slots()
		for i := 1; i < len(slots); i++ {
			if slots[i].Start < slots[i-1].Finish-1e-9 {
				t.Fatalf("trial %d: overlap after inserts", trial)
			}
		}
	}
}

// TestCandidateScratchMatchesFreshCalls checks the reusable-buffer
// variant against the allocating package-level function across many
// consecutive queries on the same scratch, on bounded and unbounded
// machines (FreshProc growing the machine mid-walk included), and that
// the dedupe table really is left all-false between calls.
func TestCandidateScratchMatchesFreshCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, bounded := range []int{0, 3, 6} {
		var scratch CandidateScratch
		for trial := 0; trial < 50; trial++ {
			k := 1 + rng.Intn(6)
			g := dag.New(k + 1)
			s := sched.New(k + 1)
			m := NewMachine(bounded)
			child := dag.NodeID(k)
			for i := 0; i < k; i++ {
				id := g.AddNode("", 1)
				p := rng.Intn(m.NumProcs())
				start := m.Proc(p).ReadyTime()
				m.Proc(p).Insert(id, start, 1)
				s.Place(id, p, start, start+1)
			}
			g.AddNode("child", 1)
			for i := 0; i < k; i++ {
				g.MustAddEdge(dag.NodeID(i), child, 1)
			}
			// The fresh variant first: FreshProc may grow an unbounded
			// machine, and both calls must then see the same machine.
			want := CandidateProcs(g, s, m, child)
			got := scratch.CandidateProcs(g, s, m, child)
			if len(got) != len(want) {
				t.Fatalf("bounded=%d trial %d: scratch %v, fresh %v", bounded, trial, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bounded=%d trial %d: scratch %v, fresh %v", bounded, trial, got, want)
				}
			}
			for p, set := range scratch.seen {
				if set {
					t.Fatalf("bounded=%d trial %d: scratch bit %d left set", bounded, trial, p)
				}
			}
		}
	}
}

func BenchmarkCandidateProcs(b *testing.B) {
	const k = 12
	g := dag.New(k + 1)
	s := sched.New(k + 1)
	m := NewMachine(8)
	child := dag.NodeID(k)
	for i := 0; i < k; i++ {
		id := g.AddNode("", 1)
		p := i % 8
		start := m.Proc(p).ReadyTime()
		m.Proc(p).Insert(id, start, 1)
		s.Place(id, p, start, start+1)
	}
	g.AddNode("child", 1)
	for i := 0; i < k; i++ {
		g.MustAddEdge(dag.NodeID(i), child, 1)
	}
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CandidateProcs(g, s, m, child)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var sc CandidateScratch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc.CandidateProcs(g, s, m, child)
		}
	})
}

func TestTryInsertReturnsTypedError(t *testing.T) {
	tl := &Timeline{}
	if err := tl.TryInsert(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tl.TryInsert(1, 4, 2); err != nil {
		t.Fatal(err)
	}
	before := len(tl.Slots())
	for _, bad := range []struct{ start, dur float64 }{
		{1, 1},   // inside slot 0
		{3, 2},   // straddles slot 1's start
		{0, 0.5}, // overlaps slot 0's head
	} {
		err := tl.TryInsert(9, bad.start, bad.dur)
		if !errors.Is(err, ErrOverlap) {
			t.Fatalf("insert at [%v,%v): want ErrOverlap, got %v", bad.start, bad.start+bad.dur, err)
		}
		if len(tl.Slots()) != before {
			t.Fatalf("failed insert mutated the timeline")
		}
	}
	// Touching boundaries is legal: [2,4) fits exactly between the slots.
	if err := tl.TryInsert(2, 2, 2); err != nil {
		t.Fatalf("boundary-touching insert rejected: %v", err)
	}
}
