package listsched

import (
	"fastsched/internal/dag"
	"fastsched/internal/sched"
)

// DATCache memoizes the data-arrival times of one node whose parents
// are all scheduled. DAT(n, p) depends on p only through which parents
// are co-located with p, so it collapses to one value per distinct
// parent processor plus a default for every other processor. Building
// the cache costs O(deg · distinct parent procs); queries are O(1).
//
// ETF and DLS evaluate DAT(n, p) for every ready node against every
// processor on every step — with this cache the per-step cost drops
// from O(|ready| · p · deg) to O(|ready| · p).
type DATCache struct {
	// all is DAT on a processor hosting none of the parents.
	all float64
	// perProc overrides all for processors hosting at least one parent.
	perProc map[int]float64
}

// NewDATCache computes the cache for node n under schedule s. Every
// parent of n must already be scheduled.
func NewDATCache(g *dag.Graph, s *sched.Schedule, n dag.NodeID) *DATCache {
	preds := g.Pred(n)
	c := &DATCache{}
	for _, e := range preds {
		if arr := s.Of(e.From).Finish + e.Weight; arr > c.all {
			c.all = arr
		}
	}
	// Distinct parent processors.
	var procs []int
	seen := map[int]bool{}
	for _, e := range preds {
		p := s.Of(e.From).Proc
		if !seen[p] {
			seen[p] = true
			procs = append(procs, p)
		}
	}
	if len(procs) > 0 {
		c.perProc = make(map[int]float64, len(procs))
		for _, q := range procs {
			var dat float64
			for _, e := range preds {
				pl := s.Of(e.From)
				arr := pl.Finish
				if pl.Proc != q {
					arr += e.Weight
				}
				if arr > dat {
					dat = arr
				}
			}
			c.perProc[q] = dat
		}
	}
	return c
}

// DAT returns the data-arrival time of the cached node on processor p.
func (c *DATCache) DAT(p int) float64 {
	if d, ok := c.perProc[p]; ok {
		if m := enabled.Load(); m != nil {
			m.DATCacheHits.Inc()
		}
		return d
	}
	if m := enabled.Load(); m != nil {
		m.DATCacheShared.Inc()
	}
	return c.all
}
