package listsched

import (
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/sched"
)

func TestDATCacheMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		// random star: k parents on random procs feeding one child
		k := 1 + rng.Intn(8)
		g := dag.New(k + 1)
		s := sched.New(k + 1)
		child := dag.NodeID(k)
		for i := 0; i < k; i++ {
			id := g.AddNode("", 1+float64(rng.Intn(5)))
			p := rng.Intn(4)
			start := float64(rng.Intn(10))
			s.Place(id, p, start, start+g.Weight(id))
		}
		g.AddNode("child", 1)
		for i := 0; i < k; i++ {
			g.MustAddEdge(dag.NodeID(i), child, float64(rng.Intn(15)))
		}
		cache := NewDATCache(g, s, child)
		for p := 0; p < 6; p++ {
			want := DAT(g, s, child, p)
			if got := cache.DAT(p); got != want {
				t.Fatalf("trial %d: DAT(%d) = %v, want %v", trial, p, got, want)
			}
		}
	}
}

func TestDATCacheEntryNode(t *testing.T) {
	g := dag.New(1)
	n := g.AddNode("solo", 2)
	s := sched.New(1)
	c := NewDATCache(g, s, n)
	if c.DAT(0) != 0 || c.DAT(3) != 0 {
		t.Fatal("entry node DAT should be 0 everywhere")
	}
}
