// Package listsched provides the machinery shared by the list-scheduling
// algorithms in this repository: per-processor timelines supporting both
// append-only "ready time" placement (FAST's phase 1) and
// insertion-based earliest-slot placement (MD, and the insertion
// variants of ETF/DLS), plus data-arrival-time computation.
package listsched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fastsched/internal/dag"
	"fastsched/internal/invariant"
	"fastsched/internal/sched"
)

// ErrOverlap is returned by TryInsert when the requested interval
// collides with an occupied slot.
var ErrOverlap = errors.New("listsched: insertion overlaps an occupied slot")

// Slot is one occupied interval on a processor timeline.
type Slot struct {
	Node          dag.NodeID
	Start, Finish float64
}

// Timeline is the occupied intervals of a single processor, sorted by
// start time. The zero value is an empty, usable timeline.
type Timeline struct {
	slots []Slot
	// prefMax[i] is the maximum Finish over slots[0..i] — the "previous
	// end" a gap walk starting after slot i resumes from. Maintained by
	// TryInsert/Remove (which already pay O(n) for the slice shift) so
	// EarliestStart can skip the prefix of slots that start too early to
	// ever fit the task.
	prefMax []float64
}

// ReadyTime returns the finish time of the last task on the processor
// (0 for an idle processor). FAST's phase 1 schedules against this value
// only, never searching for interior gaps.
func (t *Timeline) ReadyTime() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return t.slots[len(t.slots)-1].Finish
}

// Len returns the number of tasks on the timeline.
func (t *Timeline) Len() int { return len(t.slots) }

// Slots returns the occupied intervals in start order. Shared storage;
// callers must not modify.
func (t *Timeline) Slots() []Slot { return t.slots }

// EarliestStart returns the earliest time >= dat at which a task of the
// given duration fits, using insertion: interior idle gaps are
// considered before the end of the timeline.
//
// The gap walk starts at the first slot the task could possibly
// precede, found by binary search instead of scanning from the front:
// a slot with Start < dat+duration-1e-12 can never satisfy the fit
// test gapStart+duration <= Start+1e-12 (gapStart is at least dat), so
// skipping the prefix cannot change which slot accepts. The skipped
// prefix's running max finish is read from prefMax, so the returned
// start — a max over exactly the same values the full walk folds — is
// bit-identical to the linear scan (pinned by the differential test).
func (t *Timeline) EarliestStart(dat, duration float64) float64 {
	j := sort.Search(len(t.slots), func(i int) bool {
		return t.slots[i].Start >= dat+duration-1e-12
	})
	prevEnd := 0.0
	if j > 0 {
		prevEnd = t.prefMax[j-1]
	}
	for _, s := range t.slots[j:] {
		gapStart := math.Max(prevEnd, dat)
		if gapStart+duration <= s.Start+1e-12 {
			if m := enabled.Load(); m != nil {
				m.InsertGapHits.Inc()
			}
			return gapStart
		}
		prevEnd = math.Max(prevEnd, s.Finish)
	}
	if m := enabled.Load(); m != nil {
		m.InsertAppends.Inc()
	}
	return math.Max(prevEnd, dat)
}

// EarliestStartAppend returns the earliest start without insertion:
// max(ready time, dat).
func (t *Timeline) EarliestStartAppend(dat float64) float64 {
	return math.Max(t.ReadyTime(), dat)
}

// TryInsert places node n at [start, start+duration) and returns
// ErrOverlap (wrapped with the colliding interval) when the slot is
// occupied, leaving the timeline unchanged. Callers feeding externally
// supplied placements use this form; the internal list schedulers use
// Insert, whose overlap would be an algorithmic bug.
//
// A zero-duration slot occupies no time: it never blocks an insertion
// starting at its point. The position scan therefore skips every slot
// that *ends* at or before the new start (with the same 1e-9 tolerance
// as the overlap checks) — a zero-weight task's [x,x) slot sorts ahead
// of a neighbour starting at x instead of colliding with it, which is
// how EarliestStart already priced that gap.
func (t *Timeline) TryInsert(n dag.NodeID, start, duration float64) error {
	finish := start + duration
	i := 0
	for i < len(t.slots) && t.slots[i].Finish <= start+1e-9 {
		i++
	}
	// Every slot before i ends at or before start, so the only possible
	// collision is with the slot at i spilling into [start, finish).
	if i < len(t.slots) && t.slots[i].Start < finish-1e-9 {
		nx := t.slots[i]
		return fmt.Errorf("%w: node %d [%v,%v) ahead of node %d [%v,%v)",
			ErrOverlap, n, start, finish, nx.Node, nx.Start, nx.Finish)
	}
	t.slots = append(t.slots, Slot{})
	copy(t.slots[i+1:], t.slots[i:])
	t.slots[i] = Slot{Node: n, Start: start, Finish: finish}
	t.prefMax = append(t.prefMax, 0)
	t.refreshPrefMax(i)
	return nil
}

// refreshPrefMax recomputes the running max finish from slot i onward;
// entries before i are unaffected by an edit at i.
func (t *Timeline) refreshPrefMax(i int) {
	for ; i < len(t.slots); i++ {
		m := t.slots[i].Finish
		if i > 0 && t.prefMax[i-1] > m {
			m = t.prefMax[i-1]
		}
		t.prefMax[i] = m
	}
}

// Insert places node n at [start, start+duration). The interval must be
// free: the list schedulers only insert at starts they computed from
// the same timeline, so an overlap is an algorithmic bug and trips the
// invariant check rather than returning an error.
func (t *Timeline) Insert(n dag.NodeID, start, duration float64) {
	err := t.TryInsert(n, start, duration)
	invariant.Assertf(err == nil, "%v", err)
}

// Remove deletes node n's slot from the timeline and reports whether it
// was present.
func (t *Timeline) Remove(n dag.NodeID) bool {
	for i, s := range t.slots {
		if s.Node == n {
			t.slots = append(t.slots[:i], t.slots[i+1:]...)
			t.prefMax = t.prefMax[:len(t.slots)]
			t.refreshPrefMax(i)
			return true
		}
	}
	return false
}

// Machine is a growable set of processor timelines. When bounded is
// true, the machine never grows beyond its initial size; otherwise
// FreshProc can mint new processors on demand (the unbounded model of
// MD and DSC).
type Machine struct {
	timelines []*Timeline
	bounded   bool
}

// NewMachine returns a machine with procs processors; procs <= 0 yields
// an unbounded machine that starts with one processor.
func NewMachine(procs int) *Machine {
	if procs <= 0 {
		return &Machine{timelines: []*Timeline{{}}, bounded: false}
	}
	m := &Machine{timelines: make([]*Timeline, procs), bounded: true}
	for i := range m.timelines {
		m.timelines[i] = &Timeline{}
	}
	return m
}

// NumProcs returns the current number of processors.
func (m *Machine) NumProcs() int { return len(m.timelines) }

// Bounded reports whether the processor set is fixed.
func (m *Machine) Bounded() bool { return m.bounded }

// Proc returns processor p's timeline.
func (m *Machine) Proc(p int) *Timeline { return m.timelines[p] }

// FreshProc returns the index of an empty processor, growing the machine
// if it is unbounded and every processor is busy. It returns -1 when the
// machine is bounded and has no empty processor.
func (m *Machine) FreshProc() int {
	for i, t := range m.timelines {
		if t.Len() == 0 {
			return i
		}
	}
	if m.bounded {
		return -1
	}
	m.timelines = append(m.timelines, &Timeline{})
	return len(m.timelines) - 1
}

// DAT returns the data-arrival time of node n if it were placed on
// processor proc, given the partial schedule s: the maximum over the
// scheduled parents of finish time plus communication cost (zero when
// the parent sits on proc). Unscheduled parents are an algorithmic bug
// and cause a panic.
func DAT(g *dag.Graph, s *sched.Schedule, n dag.NodeID, proc int) float64 {
	var dat float64
	for _, e := range g.Pred(n) {
		pl := s.Of(e.From)
		arr := pl.Finish
		if pl.Proc != proc {
			arr += e.Weight
		}
		if arr > dat {
			dat = arr
		}
	}
	return dat
}

// CandidateProcs returns the deduplicated processor set the FAST paper
// examines when placing n: the processors accommodating n's parents plus
// one fresh processor (if any is available). The result is in parent
// order with the fresh processor last when it is not already present.
// Loops placing many nodes should use CandidateScratch.CandidateProcs
// instead, which reuses its buffers across calls.
func CandidateProcs(g *dag.Graph, s *sched.Schedule, m *Machine, n dag.NodeID) []int {
	var sc CandidateScratch
	return sc.CandidateProcs(g, s, m, n)
}

// CandidateScratch holds the reusable buffers of CandidateProcs: a
// []bool dedupe table indexed by processor and the output slice. The
// insertion-based phase-1 loops (FAST's ablation, MD, and the ETF/DLS
// variants) query candidates once per node, so reusing one scratch per
// walk removes a map allocation per node. The zero value is ready to
// use; a scratch must not be shared between concurrent walkers.
type CandidateScratch struct {
	seen []bool
	out  []int
}

// CandidateProcs is the allocation-reusing variant of the package-level
// function. The returned slice is owned by the scratch and only valid
// until the next call.
func (sc *CandidateScratch) CandidateProcs(g *dag.Graph, s *sched.Schedule, m *Machine, n dag.NodeID) []int {
	out := sc.out[:0]
	for _, e := range g.Pred(n) {
		p := s.Of(e.From).Proc
		sc.grow(p)
		if !sc.seen[p] {
			sc.seen[p] = true
			out = append(out, p)
		}
	}
	// FreshProc may mint a new processor on an unbounded machine, so the
	// dedupe table can need to grow beyond NumProcs() as seen so far.
	if f := m.FreshProc(); f >= 0 {
		sc.grow(f)
		if !sc.seen[f] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		// entry node on a fully-busy bounded machine: consider everything
		for p := 0; p < m.NumProcs(); p++ {
			out = append(out, p)
		}
	}
	// Clear only the bits this call set, leaving the table all-false for
	// the next node: O(candidates), not O(procs).
	for _, p := range out {
		if p < len(sc.seen) {
			sc.seen[p] = false
		}
	}
	sc.out = out
	return out
}

// grow ensures the dedupe table covers processor index p.
func (sc *CandidateScratch) grow(p int) {
	for len(sc.seen) <= p {
		sc.seen = append(sc.seen, false)
	}
}
