// Package stats provides the small statistical helpers the multi-seed
// experiment studies need: summary statistics over float64 samples and
// normalization utilities.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes the summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Normalize returns xs element-wise divided by the corresponding base
// value. Zero base entries map to zero (rather than Inf) so tables stay
// printable.
func Normalize(xs, base []float64) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		if i < len(base) && base[i] != 0 {
			out[i] = xs[i] / base[i]
		}
	}
	return out
}

// Slope returns the least-squares slope of ys over xs. Paired samples
// only; mismatched or sub-2-point inputs return 0. Feed it logarithms
// to estimate a power-law exponent (the growth order of an algorithm's
// running time).
func Slope(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// GeoMean returns the geometric mean of positive samples; entries <= 0
// are skipped. It returns 0 for an effectively empty sample. Geometric
// means are the standard way to aggregate normalized ratios across
// workloads.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
