package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func feq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !feq(s.Mean, 5) {
		t.Fatalf("summary = %+v", s)
	}
	// sample std of this classic dataset is sqrt(32/7)
	if !feq(s.Std, math.Sqrt(32.0/7.0)) {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if !feq(s.Median, 4.5) {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeOddMedianAndSingle(t *testing.T) {
	if m := Summarize([]float64{3, 1, 2}).Median; !feq(m, 2) {
		t.Fatalf("median = %v", m)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 || one.Median != 7 {
		t.Fatalf("single = %+v", one)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty = %+v", z)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 6, 5}, []float64{2, 3, 0})
	want := []float64{1, 2, 0}
	for i := range want {
		if !feq(out[i], want[i]) {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !feq(g, 2) {
		t.Fatalf("geomean = %v", g)
	}
	if g := GeoMean([]float64{2, 2, -1, 0}); !feq(g, 2) {
		t.Fatalf("geomean with junk = %v", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{-1}) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

// Properties: mean lies within [min, max]; std is non-negative;
// summarizing a constant sample gives std 0 and median == mean.
func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.Std >= 0 &&
			s.Median >= s.Min-1e-6 && s.Median <= s.Max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	c := Summarize([]float64{5, 5, 5, 5})
	if c.Std != 0 || c.Median != 5 {
		t.Fatalf("constant sample = %+v", c)
	}
}

func TestSlope(t *testing.T) {
	// y = 3x + 2
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 8, 11, 14}
	if s := Slope(xs, ys); !feq(s, 3) {
		t.Fatalf("slope = %v, want 3", s)
	}
	// log-log of a quadratic: slope 2
	lx := make([]float64, 5)
	ly := make([]float64, 5)
	for i := range lx {
		x := float64(i + 1)
		lx[i] = math.Log(x)
		ly[i] = math.Log(7 * x * x)
	}
	if s := Slope(lx, ly); !feq(s, 2) {
		t.Fatalf("log-log slope = %v, want 2", s)
	}
	if Slope([]float64{1}, []float64{1}) != 0 || Slope(xs, ys[:2]) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
	if Slope([]float64{2, 2, 2}, []float64{1, 5, 9}) != 0 {
		t.Fatal("vertical data should yield 0")
	}
}
