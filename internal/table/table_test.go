package table

import (
	"strings"
	"testing"
)

func TestRendering(t *testing.T) {
	tb := New("Normalized times", "Algorithm", "4", "8")
	tb.AddRow("FAST", "1.00", "1.00")
	tb.AddRowf("DSC", "%.2f", 1.05, 1.08)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Normalized times" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Algorithm") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[4], "1.05") || !strings.Contains(lines[4], "1.08") {
		t.Fatalf("DSC row = %q", lines[4])
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Fatalf("trailing space in %q", l)
		}
	}
}

func TestColumnsAlign(t *testing.T) {
	tb := New("", "A", "value")
	tb.AddRow("long-algorithm-name", "1")
	tb.AddRow("x", "123456")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// the numeric column is right-aligned: both data rows end at the
	// same column
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestUntitledNoHeaders(t *testing.T) {
	tb := New("")
	tb.AddRow("only", "row")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Fatalf("rule rendered without headers:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Fatalf("row missing:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := New("title ignored", "Algorithm", "4", "8")
	tb.AddRow("FAST", "1.00", "1.00")
	tb.AddRow(`we"ird, cell`, "x", "y")
	out := tb.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Algorithm,4,8" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"we""ird, cell",x,y` {
		t.Fatalf("quoted row = %q", lines[2])
	}
	if strings.Contains(out, "title") {
		t.Fatal("CSV should not include the title")
	}
}

func TestRaggedRowsWiden(t *testing.T) {
	tb := New("t", "h1")
	tb.AddRow("a", "b", "c")
	out := tb.String()
	if !strings.Contains(out, "c") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}
