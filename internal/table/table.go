// Package table renders the experiment results as aligned ASCII tables
// shaped like the tables in the paper: one row per algorithm, one
// column per workload parameter.
package table

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells under a title and column headers.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row; cells beyond the header count are kept and
// simply widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row whose first cell is label and whose remaining
// cells format the values with the given verb (e.g. "%.2f").
func (t *Table) AddRowf(label, verb string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.rows = append(t.rows, cells)
}

// CSV renders the table as comma-separated values (header row first,
// no title), quoting cells that contain commas or quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var row strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&row, "%-*s", width[i]+2, c)
			} else {
				fmt.Fprintf(&row, "%*s  ", width[i], c)
			}
		}
		// trim trailing spaces for clean golden files
		b.WriteString(strings.TrimRight(row.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
