package plan

import (
	"container/list"
	"sync"

	"fastsched/internal/dag"
	"fastsched/internal/obs"
)

// numShards stripes the compilation cache. Power of two so the shard
// index is a mask over the key's first byte; 16 shards keep the
// per-shard mutexes uncontended at any worker count the batch engine
// runs (the pool is bounded by GOMAXPROCS-scale numbers, not
// thousands).
const numShards = 16

// Cache is a content-addressed, lock-striped LRU over compiled graphs.
// Keys are the graphs' SHA-256 content addresses (GraphKey), so a hit
// is guaranteed to hand back artifacts for a bit-identical graph.
// Compilation is single-flight per key: concurrent misses on the same
// graph compile once and share the result.
//
// Each shard holds its own mutex, LRU list and in-flight table; a key's
// shard is selected by its first byte, which is uniformly distributed
// (SHA-256 output), so capacity and contention spread evenly. The
// capacity bound is enforced per shard at max/numShards (minimum 1), so
// the cache holds at most ~max entries.
type Cache struct {
	shards [numShards]cacheShard

	// Metrics, resolved once at construction; nil (and free) without a
	// sink.
	mHits      *obs.Counter // plan.compile_hits
	mMisses    *obs.Counter // plan.compile_misses
	mEvictions *obs.Counter // plan.compile_evictions
	mShared    *obs.Counter // plan.compile_shared (waited on another compiler)
}

type cacheShard struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*list.Element
	order   *list.List // front = most recent
	flight  map[Key]*compileCall
}

type cacheEntry struct {
	key Key
	cg  *CompiledGraph
}

// compileCall is one in-flight compilation; followers wait on ready.
type compileCall struct {
	ready chan struct{}
	cg    *CompiledGraph
	err   error
}

// DefaultCacheSize bounds a NewCache(0, ...) cache.
const DefaultCacheSize = 512

// NewCache returns a compilation cache holding at most max compiled
// graphs (0 selects DefaultCacheSize; negative values are clamped to
// one entry per shard). sink receives the plan.* metrics; nil disables
// them at the usual obs zero cost.
func NewCache(max int, sink obs.Sink) *Cache {
	if max == 0 {
		max = DefaultCacheSize
	}
	perShard := max / numShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			max:     perShard,
			entries: make(map[Key]*list.Element),
			order:   list.New(),
			flight:  make(map[Key]*compileCall),
		}
	}
	if sink != nil {
		c.mHits = sink.Counter("plan.compile_hits")
		c.mMisses = sink.Counter("plan.compile_misses")
		c.mEvictions = sink.Counter("plan.compile_evictions")
		c.mShared = sink.Counter("plan.compile_shared")
	}
	return c
}

func (c *Cache) shard(key Key) *cacheShard {
	return &c.shards[key[0]&(numShards-1)]
}

// Get returns the compiled form of g, compiling (and caching) on a
// miss. It hashes g to find its content address; callers that already
// hold the key use GetKeyed to avoid hashing twice.
func (c *Cache) Get(g *dag.Graph) (*CompiledGraph, error) {
	return c.GetKeyed(g, GraphKey(g))
}

// GetKeyed is Get with a precomputed content key. The key must be
// GraphKey(g); a mismatched key breaks the cache's bit-identity
// guarantee.
func (c *Cache) GetKeyed(g *dag.Graph, key Key) (*CompiledGraph, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		cg := el.Value.(*cacheEntry).cg
		s.mu.Unlock()
		c.mHits.Inc()
		return cg, nil
	}
	// Miss: join (or start) the in-flight compilation for this key.
	if call, ok := s.flight[key]; ok {
		s.mu.Unlock()
		<-call.ready
		c.mShared.Inc()
		return call.cg, call.err
	}
	call := &compileCall{ready: make(chan struct{})}
	s.flight[key] = call
	s.mu.Unlock()

	c.mMisses.Inc()
	cg, err := CompileKeyed(g, key)
	call.cg, call.err = cg, err

	s.mu.Lock()
	delete(s.flight, key)
	if err == nil {
		if el, ok := s.entries[key]; ok {
			el.Value.(*cacheEntry).cg = cg
			s.order.MoveToFront(el)
		} else {
			s.entries[key] = s.order.PushFront(&cacheEntry{key: key, cg: cg})
			for s.order.Len() > s.max {
				oldest := s.order.Back()
				s.order.Remove(oldest)
				delete(s.entries, oldest.Value.(*cacheEntry).key)
				c.mEvictions.Inc()
			}
		}
	}
	s.mu.Unlock()
	close(call.ready)
	return cg, err
}

// Peek reports whether key is cached without compiling or touching the
// LRU order (for tests and admission heuristics).
func (c *Cache) Peek(key Key) bool {
	s := c.shard(key)
	s.mu.Lock()
	_, ok := s.entries[key]
	s.mu.Unlock()
	return ok
}

// Graphs returns the source graph of every cached compilation, in an
// unspecified order. The warm-restart snapshot uses it to persist the
// set of graphs worth recompiling on the next start: a graph's JSON
// round-trip reproduces its stored node and edge order exactly, so the
// recompiled entry lands under the same content key. The returned
// graphs are shared read-only with the cache; callers must not mutate
// them.
func (c *Cache) Graphs() []*dag.Graph {
	if c == nil {
		return nil
	}
	var out []*dag.Graph
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.order.Front(); el != nil; el = el.Next() {
			out = append(out, el.Value.(*cacheEntry).cg.Graph)
		}
		s.mu.Unlock()
	}
	return out
}

// Len returns the total entry count across shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
