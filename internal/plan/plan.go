// Package plan compiles task graphs into the immutable per-graph
// artifacts every scheduling run otherwise re-derives from scratch: a
// flat CSR view of the adjacency, the five level metrics, the node
// classification, the topological order, and FAST's CPN-Dominate
// priority list. A CompiledGraph is computed once per unique graph —
// behind the content-addressed Cache — and then shared read-only by any
// number of concurrent scheduling runs, so the steady-state serving
// path pays only for the work that actually depends on the request
// (seed, processor count, search budget), not for the graph analysis.
//
// Compilation is deterministic: every artifact is a pure function of
// the graph's stored node and edge order, so a run fed a CompiledGraph
// is bit-identical to a run that derives the same artifacts ad hoc
// (pinned by the differential tests in internal/batch).
package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"fastsched/internal/dag"
)

// Key is the content address of a graph: a SHA-256 over its node
// weights and adjacency in stored order. Two graphs with equal keys
// describe the same scheduling input, including the edge insertion
// order the schedulers' tie-breaks depend on.
type Key [32]byte

// keyScratch pools the serialization buffers of GraphKey so the warm
// lookup path allocates nothing.
var keyScratch = sync.Pool{New: func() any { return new([]byte) }}

// GraphKey hashes g's content: node count and weights, then each
// node's successor list exactly as stored (deliberately not
// canonicalized — schedulers' tie-breaks and FAST's random transfer
// sequence depend on edge insertion order, so structurally equal
// graphs built in different orders must not collide).
func GraphKey(g *dag.Graph) Key {
	bp := keyScratch.Get().(*[]byte)
	buf := (*bp)[:0]
	u64 := func(x uint64) {
		buf = binary.LittleEndian.AppendUint64(buf, x)
	}
	v := g.NumNodes()
	u64(uint64(v))
	for i := 0; i < v; i++ {
		u64(math.Float64bits(g.Weight(dag.NodeID(i))))
	}
	u64(uint64(g.NumEdges()))
	for i := 0; i < v; i++ {
		succ := g.Succ(dag.NodeID(i))
		u64(uint64(len(succ)))
		for _, e := range succ { // stored order, deliberately not sorted
			u64(uint64(e.To))
			u64(math.Float64bits(e.Weight))
		}
	}
	k := Key(sha256.Sum256(buf))
	*bp = buf
	keyScratch.Put(bp)
	return k
}

// CSR is the flat compressed-sparse-row view of a graph's adjacency,
// built once per compilation and shared read-only by every scheduling
// run (PFAST workers included). The type itself lives in internal/dag
// (dag.CSR) since the streaming readers produce it without a *Graph;
// the alias keeps every existing plan-based call site source-compatible.
type CSR = dag.CSR

// NewCSR flattens g's adjacency in stored order.
func NewCSR(g *dag.Graph) *CSR { return dag.BuildCSR(g) }

// CompiledGraph bundles every immutable per-graph artifact the
// schedulers consume. All fields are read-only after Compile; a
// CompiledGraph may be shared freely across goroutines and runs.
type CompiledGraph struct {
	Graph *dag.Graph
	Key   Key
	CSR   *CSR
	// Levels holds the t-level, b-level, static level, ALAP table and
	// the topological order (Levels.Order) the levels were computed in.
	Levels *dag.Levels
	// Classes is the FAST CPN/IBN/OBN partition.
	Classes []dag.Class
	// CPNDominate is the paper's phase-1 priority list.
	CPNDominate []dag.NodeID
	// Blocking is the paper's blocking-node list: every non-CPN node,
	// in ID order — the neighborhood of FAST's local search.
	Blocking []dag.NodeID
}

// Compile analyzes g once, hashing it for the content address. It
// errors when the graph is empty or cyclic (ComputeLevels' contract).
func Compile(g *dag.Graph) (*CompiledGraph, error) {
	return CompileKeyed(g, GraphKey(g))
}

// CompileKeyed is Compile with a precomputed content key, so callers
// that already hashed the graph (the batch engine derives its result
// key from the same bytes) never hash twice.
func CompileKeyed(g *dag.Graph, key Key) (*CompiledGraph, error) {
	// Analysis runs on the CSR arenas, not the []Edge slices: the int32
	// kernels keep a 10⁶-node compile at O(v+e) over dense streams. The
	// results are bit-identical to the slice kernels (dag's differential
	// tests pin this), so plans compiled either way are interchangeable.
	csr := dag.BuildCSR(g)
	l, err := dag.ComputeLevelsCSR(csr)
	if err != nil {
		return nil, err
	}
	cls := dag.ClassifyCSR(csr, l)
	blocking := make([]dag.NodeID, 0, g.NumNodes())
	for i, c := range cls {
		if c != dag.CPN {
			blocking = append(blocking, dag.NodeID(i))
		}
	}
	return &CompiledGraph{
		Graph:       g,
		Key:         key,
		CSR:         csr,
		Levels:      l,
		Classes:     cls,
		CPNDominate: CPNDominateList(g, l, cls),
		Blocking:    blocking,
	}, nil
}

// CPNDominateList constructs the paper's CPN-Dominate list: critical
// path nodes in path order, each preceded by its yet-unlisted ancestors
// (larger b-levels first, ties by smaller t-level), followed by the
// out-branch nodes in decreasing b-level order.
//
// Note: the paper's §4.1 prose says OBNs are ordered by *increasing*
// b-level while the normative step (9) says *decreasing*. Decreasing is
// the only choice that keeps the list a topological order (a parent's
// b-level strictly exceeds its child's when node weights are positive),
// so decreasing is what we implement.
func CPNDominateList(g *dag.Graph, l *dag.Levels, cls []dag.Class) []dag.NodeID {
	v := g.NumNodes()
	list := make([]dag.NodeID, 0, v)
	inList := make([]bool, v)
	appendNode := func(n dag.NodeID) {
		list = append(list, n)
		inList[n] = true
	}

	// Pre-sort each node's parents by decreasing b-level, ties by
	// smaller t-level, then smaller ID: the order step (5) examines them.
	parentOrder := make([][]dag.NodeID, v)
	for i := 0; i < v; i++ {
		preds := g.Pred(dag.NodeID(i))
		ps := make([]dag.NodeID, len(preds))
		for j, e := range preds {
			ps[j] = e.From
		}
		sort.Slice(ps, func(a, b int) bool {
			if l.BLevel[ps[a]] != l.BLevel[ps[b]] {
				return l.BLevel[ps[a]] > l.BLevel[ps[b]]
			}
			if l.TLevel[ps[a]] != l.TLevel[ps[b]] {
				return l.TLevel[ps[a]] < l.TLevel[ps[b]]
			}
			return ps[a] < ps[b]
		})
		parentOrder[i] = ps
	}

	// include places n after recursively placing its unlisted ancestors,
	// larger b-levels first.
	var include func(n dag.NodeID)
	include = func(n dag.NodeID) {
		if inList[n] {
			return
		}
		for _, p := range parentOrder[n] {
			include(p)
		}
		appendNode(n)
	}

	// CPNs in ascending t-level order; for a unique critical path this
	// is exactly the path order (entry CPN first).
	cpns := dag.NodesOfClass(cls, dag.CPN)
	sort.Slice(cpns, func(a, b int) bool {
		if l.TLevel[cpns[a]] != l.TLevel[cpns[b]] {
			return l.TLevel[cpns[a]] < l.TLevel[cpns[b]]
		}
		return cpns[a] < cpns[b]
	})
	for _, n := range cpns {
		include(n)
	}

	// Step (9): append the OBNs in decreasing b-level order.
	obns := dag.NodesOfClass(cls, dag.OBN)
	sort.Slice(obns, func(a, b int) bool {
		if l.BLevel[obns[a]] != l.BLevel[obns[b]] {
			return l.BLevel[obns[a]] > l.BLevel[obns[b]]
		}
		if l.TLevel[obns[a]] != l.TLevel[obns[b]] {
			return l.TLevel[obns[a]] < l.TLevel[obns[b]]
		}
		return obns[a] < obns[b]
	})
	for _, n := range obns {
		// An OBN may still have unlisted OBN ancestors when b-levels tie;
		// include handles that while preserving step (9)'s intent.
		include(n)
	}
	return list
}
