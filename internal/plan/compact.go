package plan

import (
	"fastsched/internal/dag"
)

// CompactPlan is the CSR-only sibling of CompiledGraph for the
// million-node path: the compact artifacts a list scheduler needs —
// t/b-levels, the topological order, and (lazily) static levels —
// without ever materializing a *dag.Graph, per-node slices, or the
// full five-metric Levels. All tables may be drawn from a ScaleArena,
// in which case recompiling after the arena's Reset is allocation-free.
//
// Compilation is deterministic and bit-identical to the *Graph path:
// the level folds visit the same slots in the same order as
// dag.ComputeLevels / dag.ComputeLevelsCSR, so a scheduler fed a
// CompactPlan reproduces its *dag.Graph twin exactly (pinned by the
// differential tests in internal/hlfet).
type CompactPlan struct {
	CSR    *dag.CSR
	Levels dag.CompactLevels

	static []float64
	arena  *dag.ScaleArena
}

// CompileCompact analyzes c once. With a non-nil arena every table is
// arena-backed (single-goroutine, invalidated by the arena's Reset);
// with a nil arena the plan is immutable after the lazy accessors run
// and safe to share.
func CompileCompact(c *dag.CSR, a *dag.ScaleArena) (*CompactPlan, error) {
	p := &CompactPlan{}
	if err := p.recompile(c, a); err != nil {
		return nil, err
	}
	return p, nil
}

// Recompile points the plan at a new CSR, reusing the plan's shell
// (and its arena, when it has one). Invalidates all previously
// returned tables.
func (p *CompactPlan) Recompile(c *dag.CSR) error {
	return p.recompile(c, p.arena)
}

func (p *CompactPlan) recompile(c *dag.CSR, a *dag.ScaleArena) error {
	if _, err := c.ComputeLevelsCompactArena(&p.Levels, a); err != nil {
		return err
	}
	p.CSR = c
	p.arena = a
	p.static = nil
	return nil
}

// Static returns the static levels (computation-only b-levels),
// computed on first use: the same reverse-topological fold over the
// successor slots as dag.ComputeLevels, bit for bit. The table is
// cached on the plan until the next Recompile.
func (p *CompactPlan) Static() []float64 {
	if p.static != nil {
		return p.static
	}
	c := p.CSR
	v := c.NumNodes()
	static := p.arena.F64(v)
	order := p.Levels.Order
	for i := v - 1; i >= 0; i-- {
		n := order[i]
		st := 0.0
		for s := c.SuccOff[n]; s < c.SuccOff[n+1]; s++ {
			if cand := static[c.SuccTo[s]]; cand > st {
				st = cand
			}
		}
		static[n] = c.NodeW[n] + st
	}
	p.static = static
	return static
}

// Classes returns the CPN/IBN/OBN partition against the compact
// levels; computed per call (the classification sweep is O(v + e) and
// most consumers never ask for it).
func (p *CompactPlan) Classes() []dag.Class {
	return p.CSR.ClassifyCompactArena(&p.Levels, nil, p.arena)
}
