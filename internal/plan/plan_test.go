package plan

import (
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/example"
	"fastsched/internal/schedtest"
)

// diamond builds the four-node diamond A -> {B, C} -> D.
func diamond() *dag.Graph {
	g := dag.New(4)
	a := g.AddNode("a", 2)
	b := g.AddNode("b", 3)
	c := g.AddNode("c", 4)
	d := g.AddNode("d", 1)
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(a, c, 6)
	g.MustAddEdge(b, d, 7)
	g.MustAddEdge(c, d, 8)
	return g
}

func TestGraphKeyDeterministic(t *testing.T) {
	if GraphKey(diamond()) != GraphKey(diamond()) {
		t.Fatal("identical builds produced different keys")
	}
}

func TestGraphKeySensitivity(t *testing.T) {
	base := GraphKey(diamond())

	w := diamond()
	w.SetWeight(1, 99)
	if GraphKey(w) == base {
		t.Fatal("node weight change did not change the key")
	}

	ew := diamond()
	ew.SetEdgeWeight(0, 1, 99)
	if GraphKey(ew) == base {
		t.Fatal("edge weight change did not change the key")
	}

	extra := diamond()
	extra.MustAddEdge(0, 3, 1)
	if GraphKey(extra) == base {
		t.Fatal("added edge did not change the key")
	}

	// Same edge set inserted in a different order must NOT collide:
	// schedulers' tie-breaks depend on stored adjacency order.
	reordered := dag.New(4)
	a := reordered.AddNode("a", 2)
	b := reordered.AddNode("b", 3)
	c := reordered.AddNode("c", 4)
	d := reordered.AddNode("d", 1)
	reordered.MustAddEdge(a, c, 6) // swapped with a->b
	reordered.MustAddEdge(a, b, 5)
	reordered.MustAddEdge(b, d, 7)
	reordered.MustAddEdge(c, d, 8)
	if GraphKey(reordered) == base {
		t.Fatal("different edge insertion order collided")
	}
}

func TestCompileMatchesAdHoc(t *testing.T) {
	g := example.Graph()
	cg, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Graph != g {
		t.Fatal("compiled graph does not reference the input graph")
	}
	if cg.Key != GraphKey(g) {
		t.Fatal("compiled key differs from GraphKey")
	}
	l, err := dag.ComputeLevels(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i++ {
		if cg.Levels.BLevel[i] != l.BLevel[i] || cg.Levels.TLevel[i] != l.TLevel[i] {
			t.Fatalf("node %d: compiled levels differ from ComputeLevels", i)
		}
	}
	cls := dag.Classify(g, l)
	for i, c := range cls {
		if cg.Classes[i] != c {
			t.Fatalf("node %d: compiled class %v, ad hoc %v", i, cg.Classes[i], c)
		}
	}
	wantList := CPNDominateList(g, l, cls)
	if len(cg.CPNDominate) != len(wantList) {
		t.Fatalf("CPN-Dominate length %d, want %d", len(cg.CPNDominate), len(wantList))
	}
	for i := range wantList {
		if cg.CPNDominate[i] != wantList[i] {
			t.Fatalf("CPN-Dominate[%d] = %d, want %d", i, cg.CPNDominate[i], wantList[i])
		}
	}
	// Blocking = every non-CPN node in ID order.
	j := 0
	for i, c := range cls {
		if c == dag.CPN {
			continue
		}
		if j >= len(cg.Blocking) || cg.Blocking[j] != dag.NodeID(i) {
			t.Fatalf("blocking list mismatch at %d", i)
		}
		j++
	}
	if j != len(cg.Blocking) {
		t.Fatalf("blocking list has %d extra entries", len(cg.Blocking)-j)
	}
}

func TestCompileEmptyGraphErrors(t *testing.T) {
	if _, err := Compile(dag.New(0)); err == nil {
		t.Fatal("compiling an empty graph did not error")
	}
}

// keyInShard returns a graph whose content key lands in the given
// shard, by perturbing a node weight until the first key byte matches.
func graphInShard(t *testing.T, shard byte, salt float64) (*dag.Graph, Key) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		g := diamond()
		g.SetWeight(0, salt+float64(i))
		k := GraphKey(g)
		if k[0]&(numShards-1) == shard {
			return g, k
		}
	}
	t.Fatal("could not synthesize a graph for the shard")
	return nil, Key{}
}

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(numShards, nil) // one entry per shard
	ga, ka := graphInShard(t, 3, 1000)
	gb, kb := graphInShard(t, 3, 2000)

	cga, err := c.Get(ga)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Peek(ka) {
		t.Fatal("key not cached after Get")
	}
	again, err := c.Get(ga)
	if err != nil {
		t.Fatal(err)
	}
	if again != cga {
		t.Fatal("hit returned a different CompiledGraph pointer")
	}

	// Same shard, different graph: evicts the first (capacity 1/shard).
	if _, err := c.Get(gb); err != nil {
		t.Fatal(err)
	}
	if c.Peek(ka) {
		t.Fatal("LRU did not evict the older same-shard entry")
	}
	if !c.Peek(kb) {
		t.Fatal("newest entry missing after eviction")
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}

	// A different shard has independent capacity.
	gc, kc := graphInShard(t, 9, 3000)
	if _, err := c.Get(gc); err != nil {
		t.Fatal(err)
	}
	if !c.Peek(kb) || !c.Peek(kc) {
		t.Fatal("cross-shard insert evicted an unrelated shard's entry")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(0, nil)
	g := example.Graph()
	const n = 16
	out := make([]*CompiledGraph, n)
	errs := make([]error, n)
	start := make(chan struct{})
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			<-start
			out[i], errs[i] = c.Get(g)
			done <- i
		}(i)
	}
	close(start)
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if out[i] != out[0] {
			t.Fatal("concurrent getters received different CompiledGraphs")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
}

// TestCacheHammer drives the cache from 16 goroutines with mixed
// hit/miss/evict traffic against a deliberately tiny capacity, so the
// race detector (tier-1 runs go test -race ./...) sees every lock
// ordering: hits, single-flight joins, publishes, and evictions.
func TestCacheHammer(t *testing.T) {
	c := NewCache(numShards, nil) // one entry per shard: constant evictions
	const workers = 16

	// A pool of graphs shared by every worker so keys collide across
	// goroutines (forcing single-flight joins as well as misses).
	graphs := make([]*dag.Graph, 24)
	rng := rand.New(rand.NewSource(11))
	for i := range graphs {
		g := diamond()
		g.SetWeight(0, 1+float64(rng.Intn(8)))
		g.SetWeight(2, 1+float64(i))
		graphs[i] = g
	}

	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 200; iter++ {
				g := graphs[rng.Intn(len(graphs))]
				cg, err := c.Get(g)
				if err != nil {
					done <- err
					return
				}
				if cg.Graph != g {
					// Structurally identical graphs are distinct inputs
					// only when their content differs; sharing g pointers
					// means a hit must hand back a plan for g's content.
					if GraphKey(cg.Graph) != GraphKey(g) {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestGraphKeyAllocFree(t *testing.T) {
	if schedtest.RaceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are meaningless")
	}
	g := example.Graph()
	GraphKey(g) // warm the scratch pool
	if n := testing.AllocsPerRun(100, func() { GraphKey(g) }); n != 0 {
		t.Fatalf("GraphKey allocates %.1f per call on the warm path, want 0", n)
	}
}

func TestCacheHitAllocFree(t *testing.T) {
	c := NewCache(0, nil)
	g := example.Graph()
	k := GraphKey(g)
	if _, err := c.GetKeyed(g, k); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := c.GetKeyed(g, k); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("cache hit allocates %.1f per call, want 0", n)
	}
}
