package etf

import (
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/example"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
)

func TestConformance(t *testing.T) {
	schedtest.Conformance(t, New(), true)
}

func TestName(t *testing.T) {
	if New().Name() != "ETF" {
		t.Fatal("name")
	}
}

func TestExampleGraphValid(t *testing.T) {
	g := example.Graph()
	s, err := New().Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, s); err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "ETF" {
		t.Fatalf("Algorithm = %q", s.Algorithm)
	}
}

// ETF's defining move: among simultaneously-ready nodes it always takes
// the one that can start earliest, regardless of downstream importance.
func TestPicksGloballyEarliestStart(t *testing.T) {
	// Two independent entry nodes a (w=5) and b (w=1): with 2 procs both
	// start at 0; then child of b (needing comm 10 from a? no) ...
	// Build: a->c with comm 0, b->d with comm 0. All can start asap. The
	// test asserts every node starts at its earliest possible time given
	// the machine: entry nodes at 0 on distinct processors.
	g := dag.New(4)
	a := g.AddNode("a", 5)
	b := g.AddNode("b", 1)
	c := g.AddNode("c", 1)
	d := g.AddNode("d", 1)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	s, err := New().Schedule(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start(a) != 0 || s.Start(b) != 0 {
		t.Fatalf("entry nodes not at t=0: a=%v b=%v", s.Start(a), s.Start(b))
	}
	if s.Proc(a) == s.Proc(b) {
		t.Fatal("entry nodes share a processor despite a free one")
	}
	// d becomes ready at 1 and must run right then (b's proc is free).
	if s.Start(d) != 1 {
		t.Fatalf("d starts at %v, want 1", s.Start(d))
	}
}

// The static-level tie-break from the paper: equal earliest start times
// resolve in favour of the higher static level.
func TestStaticLevelTieBreak(t *testing.T) {
	// x and y both ready at t=0 on one processor. y has the longer
	// computation chain below it (higher SL), so ETF runs y first.
	g := dag.New(4)
	x := g.AddNode("x", 2)
	y := g.AddNode("y", 2)
	yc := g.AddNode("yc", 10)
	xc := g.AddNode("xc", 1)
	g.MustAddEdge(y, yc, 0)
	g.MustAddEdge(x, xc, 0)
	s, err := New().Schedule(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start(y) != 0 {
		t.Fatalf("y (higher SL) should start first; y=%v x=%v", s.Start(y), s.Start(x))
	}
	if s.Start(x) < s.Finish(y) {
		t.Fatalf("x overlaps y on single processor")
	}
}

func TestUnboundedProcsDefault(t *testing.T) {
	g := schedtest.ForkJoin(6, 0)
	s, err := New().Schedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, s); err != nil {
		t.Fatal(err)
	}
	// with zero comm and free processors, the fan-out runs fully parallel
	if got := s.Length(); got != 4 {
		t.Fatalf("fork-join length = %v, want 4 (1+2+1)", got)
	}
}
