// Package etf implements the ETF (Earliest Task First) scheduling
// algorithm of Hwang, Chow, Anger and Lee (SIAM J. Computing, 1989).
//
// At every step ETF computes the earliest possible start time of every
// ready node on every processor and schedules the (node, processor)
// pair with the globally smallest start time; ties between nodes are
// broken in favour of the larger static level. Time complexity is
// O(p·v^2).
package etf

import (
	"errors"

	"fastsched/internal/dag"
	"fastsched/internal/listsched"
	"fastsched/internal/plan"
	"fastsched/internal/sched"
)

// Scheduler implements sched.Scheduler with the ETF algorithm.
type Scheduler struct{}

// New returns an ETF scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "ETF" }

// Schedule implements sched.Scheduler. procs <= 0 is treated as one
// processor per node ("more than enough").
func (*Scheduler) Schedule(g *dag.Graph, procs int) (*sched.Schedule, error) {
	if g.NumNodes() == 0 {
		return nil, errors.New("etf: empty graph")
	}
	l, err := dag.ComputeLevels(g)
	if err != nil {
		return nil, err
	}
	return scheduleWithLevels(g, l, procs)
}

// ScheduleCompiled schedules against a pre-compiled plan, reusing its
// level tables instead of recomputing them. Bit-identical to Schedule.
func (*Scheduler) ScheduleCompiled(cg *plan.CompiledGraph, procs int) (*sched.Schedule, error) {
	if cg.Graph.NumNodes() == 0 {
		return nil, errors.New("etf: empty graph")
	}
	return scheduleWithLevels(cg.Graph, cg.Levels, procs)
}

func scheduleWithLevels(g *dag.Graph, l *dag.Levels, procs int) (*sched.Schedule, error) {
	if procs <= 0 {
		procs = g.NumNodes()
	}
	v := g.NumNodes()
	m := listsched.NewMachine(procs)
	s := sched.New(v)
	s.Algorithm = "ETF"

	unschedParents := make([]int, v)
	dat := make([]*listsched.DATCache, v) // built when a node becomes ready
	ready := make([]bool, v)
	var readyCount int
	for i := 0; i < v; i++ {
		unschedParents[i] = g.InDegree(dag.NodeID(i))
		if unschedParents[i] == 0 {
			ready[i] = true
			dat[i] = listsched.NewDATCache(g, s, dag.NodeID(i))
			readyCount++
		}
	}

	for scheduled := 0; scheduled < v; scheduled++ {
		if readyCount == 0 {
			return nil, errors.New("etf: no ready node (cyclic graph?)")
		}
		listsched.ObserveReadyList(readyCount)
		bestNode := dag.None
		bestProc := -1
		bestStart := 0.0
		for i := 0; i < v; i++ {
			if !ready[i] {
				continue
			}
			n := dag.NodeID(i)
			for p := 0; p < procs; p++ {
				st := m.Proc(p).EarliestStartAppend(dat[n].DAT(p))
				if better(bestNode, bestStart, n, st, l) {
					bestNode, bestProc, bestStart = n, p, st
				}
			}
		}
		w := g.Weight(bestNode)
		m.Proc(bestProc).Insert(bestNode, bestStart, w)
		s.Place(bestNode, bestProc, bestStart, bestStart+w)
		ready[bestNode] = false
		readyCount--
		for _, e := range g.Succ(bestNode) {
			unschedParents[e.To]--
			if unschedParents[e.To] == 0 {
				ready[e.To] = true
				dat[e.To] = listsched.NewDATCache(g, s, e.To)
				readyCount++
			}
		}
	}
	return s, nil
}

// better reports whether candidate (n, start) beats the incumbent:
// smaller start wins; ties go to the higher static level, then to the
// smaller node ID for determinism. Processor ties resolve to the lowest
// index because candidates are scanned in order.
func better(curNode dag.NodeID, curStart float64, n dag.NodeID, start float64, l *dag.Levels) bool {
	if curNode == dag.None {
		return true
	}
	const eps = 1e-12
	switch {
	case start < curStart-eps:
		return true
	case start > curStart+eps:
		return false
	case l.Static[n] != l.Static[curNode]:
		return l.Static[n] > l.Static[curNode]
	default:
		return n < curNode
	}
}
