package resched

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/fast"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
	"fastsched/internal/sim"
	"fastsched/internal/timing"
	"fastsched/internal/workload"
)

// workloads returns the three repair-test graphs: a random layered DAG,
// a Gaussian elimination graph, and a fork-join.
func workloads(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	ge, err := workload.GaussElim(8, timing.ParagonLike())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*dag.Graph{
		"random":    schedtest.RandomLayered(rand.New(rand.NewSource(17)), 70),
		"gausselim": ge,
		"forkjoin":  schedtest.ForkJoin(12, 3),
	}
}

// TestRepairAcrossCrashTimes is the PR's acceptance matrix: 3 workloads
// × 5 crash times, each repaired schedule must pass duration-aware
// validation, keep the executed prefix frozen, and avoid the dead
// processor in the replanned suffix.
func TestRepairAcrossCrashTimes(t *testing.T) {
	for name, g := range workloads(t) {
		t.Run(name, func(t *testing.T) {
			s, err := fast.Default().Schedule(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := sched.Validate(g, s); err != nil {
				t.Fatal(err)
			}
			base, err := sim.Run(g, s, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			procs := s.Procs()
			for i := 1; i <= 5; i++ {
				frac := float64(i) / 6
				crashProc := procs[i%len(procs)]
				crashTime := base.Time * frac
				cfg := sim.Config{Faults: &sim.FaultPlan{
					Crashes: []sim.Crash{{Proc: crashProc, Time: crashTime}},
				}}
				_, err := sim.Run(g, s, cfg)
				var ce *sim.CrashError
				if !errors.As(err, &ce) {
					// A crash late enough may not prevent completion
					// (everything on the processor already ran) — that is
					// a legal outcome, not a repair case.
					if err == nil {
						continue
					}
					t.Fatalf("crash %d: want *CrashError, got %v", i, err)
				}
				res, err := Repair(g, s, ce, Options{Seed: int64(i)})
				if err != nil {
					t.Fatalf("crash at %.3g on PE%d: %v", crashTime, crashProc, err)
				}
				if err := sched.ValidateDurations(g, res.Schedule, res.Durations); err != nil {
					t.Fatalf("crash at %.3g: spliced schedule invalid: %v", crashTime, err)
				}
				if len(res.Suffix)+ce.Completed != g.NumNodes() {
					t.Fatalf("suffix %d + prefix %d != %d nodes",
						len(res.Suffix), ce.Completed, g.NumNodes())
				}
				for _, n := range res.Suffix {
					pl := res.Schedule.Of(n)
					if ce.Dead[pl.Proc] {
						t.Fatalf("suffix task %d replanned onto dead PE%d", n, pl.Proc)
					}
					if pl.Start < crashTime-1e-9 {
						t.Fatalf("suffix task %d starts at %v, before the %v crash", n, pl.Start, crashTime)
					}
				}
				for i := 0; i < g.NumNodes(); i++ {
					n := dag.NodeID(i)
					if ce.Done[i] && res.Schedule.Start(n) != ce.Start[i] {
						t.Fatalf("prefix task %d moved from %v to %v", i, ce.Start[i], res.Schedule.Start(n))
					}
				}
				// The repaired run cannot end before the crash (the
				// suffix is non-empty and starts after it). It CAN beat
				// the fault-free makespan: the replan re-optimizes the
				// tail from scratch, while the original static order may
				// have been loose.
				if res.Makespan < crashTime {
					t.Fatalf("repaired makespan %v ends before the %v crash", res.Makespan, crashTime)
				}
			}
		})
	}
}

func TestRepairDeterminism(t *testing.T) {
	g := schedtest.RandomLayered(rand.New(rand.NewSource(23)), 60)
	s, err := fast.Default().Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Run(g, s, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Faults: &sim.FaultPlan{
		Crashes: []sim.Crash{{Proc: s.Procs()[0], Time: base.Time / 2}},
	}}
	_, err = sim.Run(g, s, cfg)
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want crash, got %v", err)
	}
	r1, err := Repair(g, s, ce, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Repair(g, s, ce, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("same seed repaired to %v and %v", r1.Makespan, r2.Makespan)
	}
}

func TestExecutePassesThroughCleanRuns(t *testing.T) {
	g := schedtest.Chain(10, 1)
	s, err := fast.Default().Schedule(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, res, err := Execute(g, s, sim.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("clean run reported a repair")
	}
	if rep == nil || rep.Time <= 0 {
		t.Fatalf("bad report %+v", rep)
	}
}

func TestExecuteTracedSplicesRepairEvents(t *testing.T) {
	g := schedtest.RandomLayered(rand.New(rand.NewSource(31)), 60)
	s, err := fast.Default().Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Run(g, s, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Faults: &sim.FaultPlan{
		Crashes: []sim.Crash{{Proc: s.Procs()[1], Time: base.Time / 3}},
	}}
	rep, res, tr, err := ExecuteTraced(g, s, cfg, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("crash produced no repair")
	}
	if rep.Time != res.Makespan {
		t.Fatalf("report time %v != repaired makespan %v", rep.Time, res.Makespan)
	}
	kinds := map[string]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	if kinds["crash"] != 1 || kinds["resched"] != 1 {
		t.Fatalf("trace markers wrong: %v", kinds)
	}
	if kinds["rstart"] != len(res.Suffix) || kinds["rfinish"] != len(res.Suffix) {
		t.Fatalf("want %d rstart/rfinish pairs, got %v", len(res.Suffix), kinds)
	}
}

func TestRepairHonorsContext(t *testing.T) {
	g := schedtest.RandomLayered(rand.New(rand.NewSource(37)), 60)
	s, err := fast.Default().Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Run(g, s, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Faults: &sim.FaultPlan{
		Crashes: []sim.Crash{{Proc: s.Procs()[0], Time: base.Time / 2}},
	}}
	_, err = sim.Run(g, s, cfg)
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want crash, got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Repair(g, s, ce, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("cancelled repair dropped the phase-1 plan")
	}
	if err := sched.ValidateDurations(g, res.Schedule, res.Durations); err != nil {
		t.Fatalf("cancelled repair's plan invalid: %v", err)
	}
}

func TestRepairAllProcessorsDead(t *testing.T) {
	g := schedtest.Chain(6, 1)
	s, err := fast.Default().Schedule(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	var crashes []sim.Crash
	for _, p := range s.Procs() {
		crashes = append(crashes, sim.Crash{Proc: p, Time: 0.5})
	}
	_, err = sim.Run(g, s, sim.Config{Faults: &sim.FaultPlan{Crashes: crashes}})
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want crash, got %v", err)
	}
	if _, err := Repair(g, s, ce, Options{}); err == nil {
		t.Fatal("repair with zero survivors must fail")
	}
}
