package resched

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/fast"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
	"fastsched/internal/sim"
	"fastsched/internal/timing"
	"fastsched/internal/workload"
)

// workloads returns the three repair-test graphs: a random layered DAG,
// a Gaussian elimination graph, and a fork-join.
func workloads(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	ge, err := workload.GaussElim(8, timing.ParagonLike())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*dag.Graph{
		"random":    schedtest.RandomLayered(rand.New(rand.NewSource(17)), 70),
		"gausselim": ge,
		"forkjoin":  schedtest.ForkJoin(12, 3),
	}
}

// TestRepairAcrossCrashTimes is the PR's acceptance matrix: 3 workloads
// × 5 crash times, each repaired schedule must pass duration-aware
// validation, keep the executed prefix frozen, and avoid the dead
// processor in the replanned suffix.
func TestRepairAcrossCrashTimes(t *testing.T) {
	for name, g := range workloads(t) {
		t.Run(name, func(t *testing.T) {
			s, err := fast.Default().Schedule(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := sched.Validate(g, s); err != nil {
				t.Fatal(err)
			}
			base, err := sim.Run(g, s, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			procs := s.Procs()
			for i := 1; i <= 5; i++ {
				frac := float64(i) / 6
				crashProc := procs[i%len(procs)]
				crashTime := base.Time * frac
				cfg := sim.Config{Faults: &sim.FaultPlan{
					Crashes: []sim.Crash{{Proc: crashProc, Time: crashTime}},
				}}
				_, err := sim.Run(g, s, cfg)
				var ce *sim.CrashError
				if !errors.As(err, &ce) {
					// A crash late enough may not prevent completion
					// (everything on the processor already ran) — that is
					// a legal outcome, not a repair case.
					if err == nil {
						continue
					}
					t.Fatalf("crash %d: want *CrashError, got %v", i, err)
				}
				res, err := Repair(g, s, ce, Options{Seed: int64(i)})
				if err != nil {
					t.Fatalf("crash at %.3g on PE%d: %v", crashTime, crashProc, err)
				}
				if err := sched.ValidateDurations(g, res.Schedule, res.Durations); err != nil {
					t.Fatalf("crash at %.3g: spliced schedule invalid: %v", crashTime, err)
				}
				if len(res.Suffix)+ce.Completed != g.NumNodes() {
					t.Fatalf("suffix %d + prefix %d != %d nodes",
						len(res.Suffix), ce.Completed, g.NumNodes())
				}
				for _, n := range res.Suffix {
					pl := res.Schedule.Of(n)
					if ce.Dead[pl.Proc] {
						t.Fatalf("suffix task %d replanned onto dead PE%d", n, pl.Proc)
					}
					if pl.Start < crashTime-1e-9 {
						t.Fatalf("suffix task %d starts at %v, before the %v crash", n, pl.Start, crashTime)
					}
				}
				for i := 0; i < g.NumNodes(); i++ {
					n := dag.NodeID(i)
					if ce.Done[i] && res.Schedule.Start(n) != ce.Start[i] {
						t.Fatalf("prefix task %d moved from %v to %v", i, ce.Start[i], res.Schedule.Start(n))
					}
				}
				// The repaired run cannot end before the crash (the
				// suffix is non-empty and starts after it). It CAN beat
				// the fault-free makespan: the replan re-optimizes the
				// tail from scratch, while the original static order may
				// have been loose.
				if res.Makespan < crashTime {
					t.Fatalf("repaired makespan %v ends before the %v crash", res.Makespan, crashTime)
				}
			}
		})
	}
}

func TestRepairDeterminism(t *testing.T) {
	g := schedtest.RandomLayered(rand.New(rand.NewSource(23)), 60)
	s, err := fast.Default().Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Run(g, s, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Faults: &sim.FaultPlan{
		Crashes: []sim.Crash{{Proc: s.Procs()[0], Time: base.Time / 2}},
	}}
	_, err = sim.Run(g, s, cfg)
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want crash, got %v", err)
	}
	r1, err := Repair(g, s, ce, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Repair(g, s, ce, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("same seed repaired to %v and %v", r1.Makespan, r2.Makespan)
	}
}

func TestExecutePassesThroughCleanRuns(t *testing.T) {
	g := schedtest.Chain(10, 1)
	s, err := fast.Default().Schedule(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, res, err := Execute(g, s, sim.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("clean run reported a repair")
	}
	if rep == nil || rep.Time <= 0 {
		t.Fatalf("bad report %+v", rep)
	}
}

func TestExecuteTracedSplicesRepairEvents(t *testing.T) {
	g := schedtest.RandomLayered(rand.New(rand.NewSource(31)), 60)
	s, err := fast.Default().Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Run(g, s, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Faults: &sim.FaultPlan{
		Crashes: []sim.Crash{{Proc: s.Procs()[1], Time: base.Time / 3}},
	}}
	rep, res, tr, err := ExecuteTraced(g, s, cfg, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("crash produced no repair")
	}
	if rep.Time != res.Makespan {
		t.Fatalf("report time %v != repaired makespan %v", rep.Time, res.Makespan)
	}
	kinds := map[string]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	if kinds["crash"] != 1 || kinds["resched"] != 1 {
		t.Fatalf("trace markers wrong: %v", kinds)
	}
	if kinds["rstart"] != len(res.Suffix) || kinds["rfinish"] != len(res.Suffix) {
		t.Fatalf("want %d rstart/rfinish pairs, got %v", len(res.Suffix), kinds)
	}
}

func TestRepairHonorsContext(t *testing.T) {
	g := schedtest.RandomLayered(rand.New(rand.NewSource(37)), 60)
	s, err := fast.Default().Schedule(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Run(g, s, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Faults: &sim.FaultPlan{
		Crashes: []sim.Crash{{Proc: s.Procs()[0], Time: base.Time / 2}},
	}}
	_, err = sim.Run(g, s, cfg)
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want crash, got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Repair(g, s, ce, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("cancelled repair dropped the phase-1 plan")
	}
	if err := sched.ValidateDurations(g, res.Schedule, res.Durations); err != nil {
		t.Fatalf("cancelled repair's plan invalid: %v", err)
	}
}

func TestRepairAllProcessorsDead(t *testing.T) {
	g := schedtest.Chain(6, 1)
	s, err := fast.Default().Schedule(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	var crashes []sim.Crash
	for _, p := range s.Procs() {
		crashes = append(crashes, sim.Crash{Proc: p, Time: 0.5})
	}
	_, err = sim.Run(g, s, sim.Config{Faults: &sim.FaultPlan{Crashes: crashes}})
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want crash, got %v", err)
	}
	if _, err := Repair(g, s, ce, Options{}); err == nil {
		t.Fatal("repair with zero survivors must fail")
	}
}

// TestRepairDoubleFault is the crash-during-replan matrix: a second
// processor dies while the repaired schedule from the first crash is
// executing. The second repair must avoid BOTH dead processors, keep
// the doubly-spliced schedule valid under realized durations, and
// floor every survivor's replanned work at the later crash time.
func TestRepairDoubleFault(t *testing.T) {
	for name, g := range workloads(t) {
		t.Run(name, func(t *testing.T) {
			s, err := fast.Default().Schedule(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			base, err := sim.Run(g, s, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			procs := s.Procs()
			if len(procs) < 3 {
				t.Skipf("schedule uses %d processors; need 3 to survive two crashes", len(procs))
			}
			doubleRepairs := 0
			cases := []struct{ f1, f2 float64 }{
				{0.25, 0.55}, // early first crash, mid-run second
				{0.40, 0.60}, // both mid-run
				{0.20, 0.85}, // second crash near the end of the repair
			}
			for ci, tc := range cases {
				t1 := base.Time * tc.f1
				p1 := procs[0]

				// First fault: crash p1 at t1 and repair.
				_, err := sim.Run(g, s, sim.Config{Faults: &sim.FaultPlan{
					Crashes: []sim.Crash{{Proc: p1, Time: t1}},
				}})
				var ce1 *sim.CrashError
				if !errors.As(err, &ce1) {
					if err == nil {
						continue // crash did not prevent completion
					}
					t.Fatalf("case %d first crash: %v", ci, err)
				}
				r1, err := Repair(g, s, ce1, Options{Seed: int64(ci)})
				if err != nil {
					t.Fatalf("case %d first repair: %v", ci, err)
				}

				// Second fault mid-replan: re-execute the repaired
				// schedule with BOTH crashes planned (p1 stays dead; a
				// survivor p2 dies at a later time t2).
				p2 := -1
				for _, p := range r1.Survivors {
					if p != p1 {
						p2 = p
						break
					}
				}
				if p2 < 0 {
					t.Fatalf("case %d: no survivor to crash", ci)
				}
				t2 := r1.Makespan * tc.f2
				if t2 <= t1 {
					t2 = t1 + (r1.Makespan-t1)/2
				}
				_, err = sim.Run(g, r1.Schedule, sim.Config{Faults: &sim.FaultPlan{
					Crashes: []sim.Crash{{Proc: p1, Time: t1}, {Proc: p2, Time: t2}},
				}})
				var ce2 *sim.CrashError
				if !errors.As(err, &ce2) {
					if err == nil {
						continue // the repaired run outran the second crash
					}
					t.Fatalf("case %d second crash: %v", ci, err)
				}
				if !ce2.Dead[p1] || !ce2.Dead[p2] {
					t.Fatalf("case %d: dead set %v missing PE%d/PE%d", ci, ce2.Dead, p1, p2)
				}

				r2, err := Repair(g, r1.Schedule, ce2, Options{Seed: int64(ci)})
				if err != nil {
					t.Fatalf("case %d second repair: %v", ci, err)
				}
				doubleRepairs++
				if err := sched.ValidateDurations(g, r2.Schedule, r2.Durations); err != nil {
					t.Fatalf("case %d: doubly-spliced schedule invalid: %v", ci, err)
				}
				if len(r2.Suffix)+ce2.Completed != g.NumNodes() {
					t.Fatalf("case %d: suffix %d + prefix %d != %d nodes",
						ci, len(r2.Suffix), ce2.Completed, g.NumNodes())
				}
				for _, n := range r2.Suffix {
					pl := r2.Schedule.Of(n)
					if pl.Proc == p1 || pl.Proc == p2 {
						t.Fatalf("case %d: suffix task %d replanned onto dead PE%d", ci, n, pl.Proc)
					}
					// Survivors are floored at the LATER crash: nothing
					// replanned may start before t2.
					if pl.Start < t2-1e-9 {
						t.Fatalf("case %d: suffix task %d starts %v, before the later crash %v",
							ci, n, pl.Start, t2)
					}
				}
				for _, p := range r2.Survivors {
					if p == p1 || p == p2 {
						t.Fatalf("case %d: dead PE%d listed as survivor", ci, p)
					}
				}
				// The executed prefix (both crash epochs) stays frozen.
				for i := 0; i < g.NumNodes(); i++ {
					n := dag.NodeID(i)
					if ce2.Done[i] && r2.Schedule.Start(n) != ce2.Start[i] {
						t.Fatalf("case %d: prefix task %d moved from %v to %v",
							ci, i, ce2.Start[i], r2.Schedule.Start(n))
					}
				}
				if r2.Makespan < t2 {
					t.Fatalf("case %d: repaired makespan %v ends before the later crash %v",
						ci, r2.Makespan, t2)
				}
			}
			if doubleRepairs == 0 {
				t.Fatal("no case exercised a second repair; the matrix is vacuous")
			}
		})
	}
}
