// Package resched repairs a schedule after a processor crash: it
// freezes the executed prefix reported by the simulator's *CrashError,
// extracts the unexecuted suffix of the DAG, re-runs FAST's two phases
// (CPN-Dominate initial placement plus a budgeted local search) over the
// surviving processors, and splices the repaired suffix back onto the
// frozen prefix.
//
// The fault model behind the splice: results of completed tasks survive
// their processor's crash (they are checkpointed off-node the moment the
// task finishes), so a replanned successor can fetch a dead processor's
// output by paying the edge's communication cost once more. Aborted
// tasks lost their partial work and re-run from scratch in the suffix.
package resched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"fastsched/internal/dag"
	"fastsched/internal/fast"
	"fastsched/internal/obs"
	"fastsched/internal/sched"
	"fastsched/internal/sim"
)

// DefaultMaxSteps is the local-search budget of the repair: the paper's
// MAXSTEP constant, reused because the suffix search is the same greedy
// random walk FAST runs in phase 2.
const DefaultMaxSteps = 64

// Options configures a repair.
type Options struct {
	// MaxSteps bounds the greedy local search over the suffix
	// placement. Zero means DefaultMaxSteps; negative disables the
	// search (initial placement only).
	MaxSteps int
	// Seed drives the search's random moves.
	Seed int64
	// Context, when non-nil, bounds the repair: the search stops at the
	// first cancelled step and Repair returns the best plan found so far
	// together with ctx.Err().
	Context context.Context
	// Metrics, when non-nil, receives repair telemetry: repairs run,
	// suffix sizes, surviving-processor counts, and repaired makespans.
	Metrics obs.Sink
}

// Result is a repaired execution: the spliced schedule, the per-task
// durations it must be validated against, and the bookkeeping a caller
// needs to report on the recovery.
type Result struct {
	// Schedule holds the executed prefix at its realized (simulated)
	// times and the replanned suffix at its planned times.
	Schedule *sched.Schedule
	// Durations are the per-task durations matching Schedule's slots:
	// realized durations for the prefix (jitter and perturbation
	// included), nominal node weights for the suffix. Pass to
	// sched.ValidateDurations.
	Durations []float64
	// Suffix lists the replanned tasks (original node IDs) in their
	// planned start order.
	Suffix []dag.NodeID
	// Survivors are the processors the suffix was replanned onto.
	Survivors []int
	// Makespan is the finish time of the spliced schedule.
	Makespan float64
	// Report summarizes the repaired execution in the simulator's
	// format: prefix message/retry counts carry over, busy time combines
	// prefix (realized) and suffix (planned) work.
	Report *sim.Report
}

// Prefix describes the executed part of a DAG at the instant a replan
// is requested: which tasks have completed (or are guaranteed to
// complete — an in-flight task on a surviving processor counts), when
// each of them finishes, and where it ran. Finish and Proc are read
// only at indices where Done is true.
type Prefix struct {
	Done   []bool
	Finish []float64
	Proc   []int
}

// SuffixPlan is the replanned placement of a DAG's unexecuted suffix:
// parallel arrays over Nodes (the suffix tasks in ascending original
// node ID), plus the makespan of the suffix placement.
type SuffixPlan struct {
	Nodes    []dag.NodeID
	Proc     []int
	Start    []float64
	Finish   []float64
	Makespan float64
}

// PlanSuffix replans the unexecuted suffix of g — every task pre.Done
// does not cover — onto the surviving processors, no earlier than each
// survivor's floor. It runs FAST's two phases over the suffix subgraph:
// the CPN-Dominate initial placement, then the budgeted greedy random
// walk. Boundary messages from prefix parents arrive at
// pre.Finish[parent], plus the edge's communication cost when the
// consumer runs on a different processor than pre.Proc[parent] — a dead
// processor's results are assumed checkpointed, so they remain
// fetchable at that cost.
//
// On context expiry the best plan found so far is returned together
// with ctx.Err(); both are non-nil in that case. This is the planner
// the online multi-DAG engine calls once per affected job after a
// crash, with the shared-timeline frontiers as floors.
func PlanSuffix(g *dag.Graph, pre Prefix, survivors []int, floor map[int]float64, opts Options) (*SuffixPlan, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	v := g.NumNodes()
	if len(pre.Done) != v {
		return nil, fmt.Errorf("resched: prefix sized for %d nodes, graph has %d", len(pre.Done), v)
	}
	if len(survivors) == 0 {
		return nil, errors.New("resched: no surviving processors")
	}
	pl, err := newPlanner(g, pre, survivors, floor)
	if err != nil {
		return nil, err
	}
	if len(pl.orig) == 0 {
		return nil, errors.New("resched: crash report shows no unexecuted tasks")
	}
	if err := pl.priorityOrder(); err != nil {
		return nil, err
	}

	// Phase 1: FAST's initial placement over the suffix subgraph —
	// CPN-Dominate list order, each node placed on the surviving
	// processor that finishes it earliest given the boundary arrivals.
	pl.initialPlacement()

	// Phase 2: FAST's greedy random walk, budgeted at MaxSteps, moving
	// one suffix task to a random survivor and keeping strict
	// improvements only.
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	var ctxErr error
	if maxSteps > 0 && len(survivors) > 1 {
		ctxErr = pl.search(ctx, maxSteps, rand.New(rand.NewSource(opts.Seed)))
	}

	plan := &SuffixPlan{
		Nodes:  append([]dag.NodeID(nil), pl.orig...),
		Proc:   append([]int(nil), pl.assign...),
		Start:  append([]float64(nil), pl.start...),
		Finish: append([]float64(nil), pl.finish...),
	}
	for _, f := range plan.Finish {
		if f > plan.Makespan {
			plan.Makespan = f
		}
	}
	return plan, ctxErr
}

// Repair replans the unexecuted suffix of a crashed run onto the
// surviving processors. The spliced schedule is validated against the
// realized prefix durations before it is returned; a validation failure
// is a bug in the planner and surfaces as an error.
//
// On context expiry the best plan found so far is returned together
// with ctx.Err(); both are non-nil in that case.
func Repair(g *dag.Graph, s *sched.Schedule, crash *sim.CrashError, opts Options) (*Result, error) {
	if crash == nil {
		return nil, errors.New("resched: nil crash report")
	}
	v := g.NumNodes()
	if len(crash.Done) != v {
		return nil, fmt.Errorf("resched: crash report sized for %d nodes, graph has %d", len(crash.Done), v)
	}

	// Survivors: the schedule's processors minus the dead set, with their
	// splice frontiers floored at the last crash (the replan instant).
	lastCrash := 0.0
	for _, c := range crash.Crashes {
		if c.Time > lastCrash {
			lastCrash = c.Time
		}
	}
	var survivors []int
	for _, p := range s.Procs() {
		if !crash.Dead[p] {
			survivors = append(survivors, p)
		}
	}
	if len(survivors) == 0 {
		return nil, errors.New("resched: no surviving processors")
	}
	floor := make(map[int]float64, len(survivors))
	for _, p := range survivors {
		floor[p] = maxf(crash.ProcFree[p], lastCrash)
	}

	pre := Prefix{Done: crash.Done, Finish: crash.Finish, Proc: make([]int, v)}
	for i := 0; i < v; i++ {
		if crash.Done[i] {
			pre.Proc[i] = s.Proc(dag.NodeID(i))
		}
	}
	plan, ctxErr := PlanSuffix(g, pre, survivors, floor, opts)
	if plan == nil {
		return nil, ctxErr
	}

	res, err := splice(g, s, crash, plan)
	if err != nil {
		return nil, err
	}
	res.Survivors = survivors
	if m := opts.Metrics; m != nil {
		m.Counter("resched.repairs").Inc()
		m.Counter("resched.crashes_observed").Add(int64(len(crash.Crashes)))
		m.Histogram("resched.suffix_len", obs.ExpBuckets(1, 2, 16)).Observe(float64(len(res.Suffix)))
		m.Histogram("resched.survivors", obs.LinearBuckets(1, 1, 32)).Observe(float64(len(survivors)))
		m.Gauge("resched.repaired_makespan").Set(res.Makespan)
	}
	return res, ctxErr
}

// boundaryEdge is a message from an executed prefix parent into the
// suffix: the parent finished at finish on processor proc, and fetching
// its result from any other processor costs comm.
type boundaryEdge struct {
	proc   int
	finish float64
	comm   float64
}

// planner holds the suffix subgraph and the placement state of the
// repair search.
type planner struct {
	sub      *dag.Graph
	orig     []dag.NodeID // sub ID -> original ID
	subOf    []int        // original ID -> sub ID, -1 for prefix tasks
	list     []int        // phase-1 priority order (sub IDs, topological)
	boundary [][]boundaryEdge
	procs    []int
	floor    map[int]float64

	assign []int // sub ID -> processor
	start  []float64
	finish []float64
	length float64

	procReady map[int]float64 // scratch for evaluate
}

// newPlanner extracts the unexecuted suffix of g as its own graph (IDs
// remapped densely) and records the boundary arrivals from the executed
// prefix.
func newPlanner(g *dag.Graph, pre Prefix, survivors []int, floor map[int]float64) (*planner, error) {
	v := g.NumNodes()
	subOf := make([]int, v)
	var orig []dag.NodeID
	for i := 0; i < v; i++ {
		if pre.Done[i] {
			subOf[i] = -1
		} else {
			subOf[i] = len(orig)
			orig = append(orig, dag.NodeID(i))
		}
	}
	sub := dag.New(len(orig))
	for _, n := range orig {
		sub.AddNode(g.Label(n), g.Weight(n))
	}
	boundary := make([][]boundaryEdge, len(orig))
	for _, n := range orig {
		j := subOf[n]
		for _, e := range g.Pred(n) {
			if pj := subOf[e.From]; pj >= 0 {
				if err := sub.AddEdge(dag.NodeID(pj), dag.NodeID(j), e.Weight); err != nil {
					return nil, fmt.Errorf("resched: suffix extraction: %w", err)
				}
			} else {
				boundary[j] = append(boundary[j], boundaryEdge{
					proc:   pre.Proc[e.From],
					finish: pre.Finish[e.From],
					comm:   e.Weight,
				})
			}
		}
	}
	pl := &planner{
		sub:       sub,
		orig:      orig,
		subOf:     subOf,
		boundary:  boundary,
		procs:     survivors,
		floor:     floor,
		assign:    make([]int, len(orig)),
		start:     make([]float64, len(orig)),
		finish:    make([]float64, len(orig)),
		procReady: make(map[int]float64, len(survivors)),
	}
	return pl, nil
}

// priorityOrder builds FAST's phase-1 list over the suffix subgraph.
func (pl *planner) priorityOrder() error {
	l, err := dag.ComputeLevels(pl.sub)
	if err != nil {
		return fmt.Errorf("resched: suffix levels: %w", err)
	}
	cls := dag.Classify(pl.sub, l)
	list := fast.CPNDominateList(pl.sub, l, cls)
	pl.list = make([]int, len(list))
	for i, n := range list {
		pl.list[i] = int(n)
	}
	return nil
}

// arrivalOn returns the earliest time sub node j's external inputs are
// available on processor p, given the current suffix placement for
// already-planned suffix parents.
func (pl *planner) arrivalOn(j, p int, planned []bool) float64 {
	t := 0.0
	for _, b := range pl.boundary[j] {
		a := b.finish
		if b.proc != p {
			a += b.comm
		}
		if a > t {
			t = a
		}
	}
	for _, e := range pl.sub.Pred(dag.NodeID(j)) {
		pj := int(e.From)
		if planned != nil && !planned[pj] {
			continue
		}
		a := pl.finish[pj]
		if pl.assign[pj] != p {
			a += e.Weight
		}
		if a > t {
			t = a
		}
	}
	return t
}

// initialPlacement is FAST's ready-time placement restricted to the
// survivors: each list node goes to the processor that finishes it
// earliest (ties to the lower processor ID).
func (pl *planner) initialPlacement() {
	ready := pl.procReady
	for _, p := range pl.procs {
		ready[p] = pl.floor[p]
	}
	planned := make([]bool, len(pl.orig))
	for _, j := range pl.list {
		bestP, bestStart, bestFinish := -1, 0.0, 0.0
		w := pl.sub.Weight(dag.NodeID(j))
		for _, p := range pl.procs {
			st := maxf(ready[p], pl.arrivalOn(j, p, planned))
			fin := st + w
			if bestP < 0 || fin < bestFinish-1e-12 {
				bestP, bestStart, bestFinish = p, st, fin
			}
		}
		pl.assign[j] = bestP
		pl.start[j] = bestStart
		pl.finish[j] = bestFinish
		ready[bestP] = bestFinish
		planned[j] = true
	}
	pl.length = pl.evaluate()
}

// evaluate replays the suffix under the current assignment: nodes run in
// list order on their processors (the list is a topological order of the
// subgraph), starting no earlier than the processor's frontier and every
// input's arrival. It fills start/finish and returns the makespan of the
// suffix.
func (pl *planner) evaluate() float64 {
	ready := pl.procReady
	for _, p := range pl.procs {
		ready[p] = pl.floor[p]
	}
	length := 0.0
	for _, j := range pl.list {
		p := pl.assign[j]
		st := maxf(ready[p], pl.arrivalOn(j, p, nil))
		// arrivalOn with nil planned reads every suffix parent; parents
		// precede j in the topological list, so their times are current.
		fin := st + pl.sub.Weight(dag.NodeID(j))
		pl.start[j] = st
		pl.finish[j] = fin
		ready[p] = fin
		if fin > length {
			length = fin
		}
	}
	return length
}

// search is the budgeted greedy random walk of FAST's phase 2, applied
// to the suffix: move one random task to a random surviving processor,
// keep the move only when the replayed makespan strictly improves. On
// context expiry it stops and returns ctx.Err() with the best placement
// still committed.
func (pl *planner) search(ctx context.Context, maxSteps int, rng *rand.Rand) error {
	for step := 0; step < maxSteps; step++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		j := pl.list[rng.Intn(len(pl.list))]
		p := pl.procs[rng.Intn(len(pl.procs))]
		if p == pl.assign[j] {
			continue
		}
		old := pl.assign[j]
		pl.assign[j] = p
		if l := pl.evaluate(); l < pl.length-1e-12 {
			pl.length = l
		} else {
			pl.assign[j] = old
			pl.length = pl.evaluate()
		}
	}
	return nil
}

// splice builds the repaired full schedule: prefix tasks at their
// realized times, suffix tasks at their planned times, validated
// against the realized prefix durations.
func splice(g *dag.Graph, s *sched.Schedule, crash *sim.CrashError, plan *SuffixPlan) (*Result, error) {
	v := g.NumNodes()
	subOf := make([]int, v)
	for i := range subOf {
		subOf[i] = -1
	}
	for j, n := range plan.Nodes {
		subOf[n] = j
	}
	out := sched.New(v)
	out.Algorithm = s.Algorithm + "+resched"
	dur := make([]float64, v)
	finishAll := make([]float64, v)
	for i := 0; i < v; i++ {
		n := dag.NodeID(i)
		if j := subOf[i]; j >= 0 {
			out.Place(n, plan.Proc[j], plan.Start[j], plan.Finish[j])
			dur[i] = g.Weight(n)
			finishAll[i] = plan.Finish[j]
		} else {
			out.Place(n, s.Proc(n), crash.Start[i], crash.Finish[i])
			dur[i] = crash.Finish[i] - crash.Start[i]
			finishAll[i] = crash.Finish[i]
		}
	}
	if err := sched.ValidateDurations(g, out, dur); err != nil {
		return nil, fmt.Errorf("resched: spliced schedule invalid: %w", err)
	}

	suffix := append([]dag.NodeID(nil), plan.Nodes...)
	sort.Slice(suffix, func(a, b int) bool {
		sa, sb := plan.Start[subOf[suffix[a]]], plan.Start[subOf[suffix[b]]]
		if sa != sb {
			return sa < sb
		}
		return suffix[a] < suffix[b]
	})

	makespan := 0.0
	for _, f := range finishAll {
		if f > makespan {
			makespan = f
		}
	}
	busy := make(map[int]float64, len(crash.BusyTime))
	for p, b := range crash.BusyTime {
		busy[p] = b
	}
	for j, n := range plan.Nodes {
		busy[plan.Proc[j]] += g.Weight(n)
	}
	return &Result{
		Schedule:  out,
		Durations: dur,
		Suffix:    suffix,
		Makespan:  makespan,
		Report: &sim.Report{
			Time: makespan, Finish: finishAll, BusyTime: busy,
			Messages: crash.Messages, Retries: crash.Retries,
		},
	}, nil
}

// Execute runs the schedule under cfg and repairs it when a crash
// prevents completion. Without a crash it returns the simulator's
// report and a nil Result; with one, the repaired report and the full
// Result. Non-crash simulation errors pass through unchanged.
func Execute(g *dag.Graph, s *sched.Schedule, cfg sim.Config, opts Options) (*sim.Report, *Result, error) {
	rep, err := sim.Run(g, s, cfg)
	if err == nil {
		return rep, nil, nil
	}
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		return nil, nil, err
	}
	res, rerr := Repair(g, s, ce, opts)
	if res == nil {
		return nil, nil, rerr
	}
	return res.Report, res, rerr
}

// ExecuteTraced is Execute with event recording: on a crash the
// returned tracer holds the executed prefix's events followed by the
// replan marker ("resched") and the repaired suffix's planned
// "rstart"/"rfinish" events, ready for WriteChromeTrace.
func ExecuteTraced(g *dag.Graph, s *sched.Schedule, cfg sim.Config, opts Options) (*sim.Report, *Result, *sim.Tracer, error) {
	rep, tr, err := sim.RunTraced(g, s, cfg)
	if err == nil {
		return rep, nil, tr, nil
	}
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		return nil, nil, nil, err
	}
	res, rerr := Repair(g, s, ce, opts)
	if res == nil {
		return nil, nil, nil, rerr
	}
	lastCrash := ce.Crashes[len(ce.Crashes)-1]
	tr.Record(sim.TraceEvent{Time: lastCrash.Time, Kind: "resched", Proc: lastCrash.Proc})
	for _, n := range res.Suffix {
		p := res.Schedule.Of(n)
		tr.Record(sim.TraceEvent{Time: p.Start, Kind: "rstart", Node: n, Proc: p.Proc})
		tr.Record(sim.TraceEvent{Time: p.Finish, Kind: "rfinish", Node: n, Proc: p.Proc})
	}
	return res.Report, res, tr, rerr
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
