package batch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"fastsched/internal/dag"
)

// FileResult is one directory entry's outcome, serialized as one JSONL
// line by WriteJSONL.
type FileResult struct {
	File      string  `json:"file"`
	Algorithm string  `json:"algorithm"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	Procs     int     `json:"procs"`
	Makespan  float64 `json:"makespan"`
	ProcsUsed int     `json:"procs_used"`
	CacheHit  bool    `json:"cache_hit,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
}

// Aggregate summarizes one directory batch run.
type Aggregate struct {
	Requested  int           `json:"requested"`
	Succeeded  int           `json:"succeeded"`
	Failed     int           `json:"failed"`
	CacheHits  int           `json:"cache_hits"`
	Coalesced  int           `json:"coalesced"`
	Wall       time.Duration `json:"wall_ns"`
	SumLatency time.Duration `json:"sum_latency_ns"`
	// MakespanSum and MakespanMax aggregate the successful schedules.
	MakespanSum float64 `json:"makespan_sum"`
	MakespanMax float64 `json:"makespan_max"`
}

// Throughput returns completed graphs per second of wall time.
func (a Aggregate) Throughput() float64 {
	if a.Wall <= 0 {
		return 0
	}
	return float64(a.Succeeded+a.Failed) / a.Wall.Seconds()
}

// MeanLatency returns the average in-engine request latency.
func (a Aggregate) MeanLatency() time.Duration {
	n := a.Succeeded + a.Failed
	if n == 0 {
		return 0
	}
	return a.SumLatency / time.Duration(n)
}

// ListGraphFiles returns the sorted *.json task-graph files of dir.
func ListGraphFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		files = append(files, filepath.Join(dir, ent.Name()))
	}
	sort.Strings(files)
	return files, nil
}

// loadGraph reads one task-graph JSON file.
func loadGraph(path string) (*dag.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := dag.ReadJSON(f)
	return g, err
}

// loadAhead bounds how many parsed graphs the RunDir prefetcher may
// hold ahead of the submit loop. Parsing is the CPU-bound half of
// directory ingest; a small window keeps every core busy without
// materializing an unbounded directory in memory.
func loadAhead() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

// prefetchGraphs parses the files concurrently but delivers them
// strictly in file order: loads[i] carries file i's graph (or load
// error) and the window semaphore caps outstanding parsed-but-not-yet-
// consumed graphs. The consumer must receive from every channel in
// order and release one window token per receive.
func prefetchGraphs(files []string) (loads []chan loadResult, window chan struct{}) {
	loads = make([]chan loadResult, len(files))
	for i := range loads {
		loads[i] = make(chan loadResult, 1)
	}
	window = make(chan struct{}, loadAhead())
	go func() {
		for i, path := range files {
			window <- struct{}{} // blocks while the consumer is behind
			go func(i int, path string) {
				g, err := loadGraph(path)
				loads[i] <- loadResult{g: g, err: err}
			}(i, path)
		}
	}()
	return loads, window
}

type loadResult struct {
	g   *dag.Graph
	err error
}

// RunDir schedules every *.json graph of dir through the engine
// concurrently (admission paced by the engine's backpressure) and
// returns the per-file results in file order plus the aggregate. A
// file that fails to load or schedule is reported in its FileResult;
// RunDir only errors when the directory itself is unreadable or empty.
//
// Loading is pipelined: a bounded pool parses files ahead of the
// submit loop, which stays sequential in file order — so the engine's
// backpressure, the admission order, and the JSONL output order are
// all identical to the previous sequential loader.
func RunDir(ctx context.Context, e *Engine, dir string, tmpl Request) ([]FileResult, Aggregate, error) {
	files, err := ListGraphFiles(dir)
	if err != nil {
		return nil, Aggregate{}, err
	}
	if len(files) == 0 {
		return nil, Aggregate{}, fmt.Errorf("batch: no *.json task graphs in %s", dir)
	}

	begin := time.Now()
	out := make([]FileResult, len(files))
	loads, window := prefetchGraphs(files)
	var wg sync.WaitGroup
	for i, path := range files {
		fr := FileResult{File: filepath.Base(path), Algorithm: tmpl.Algorithm, Procs: tmpl.Procs}
		if fr.Algorithm == "" {
			fr.Algorithm = DefaultAlgorithm
		}
		ld := <-loads[i]
		<-window
		g, err := ld.g, ld.err
		if err != nil {
			fr.Error = err.Error()
			out[i] = fr
			continue
		}
		fr.Nodes, fr.Edges = g.NumNodes(), g.NumEdges()
		req := tmpl
		req.ID = fr.File
		req.Graph = g

		// Submit applies backpressure: this loop blocks while the queue
		// is full, so a huge directory never materializes as unbounded
		// in-memory jobs.
		ch, err := e.Submit(ctx, req)
		if err != nil {
			fr.Error = err.Error()
			out[i] = fr
			continue
		}
		out[i] = fr
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := <-ch
			fr := &out[i]
			fr.ElapsedMS = float64(res.Elapsed) / float64(time.Millisecond)
			fr.CacheHit = res.CacheHit
			fr.Coalesced = res.Coalesced
			if res.Err != nil {
				fr.Error = res.Err.Error()
				return
			}
			fr.Makespan = res.Makespan
			fr.ProcsUsed = res.ProcsUsed
		}(i)
	}
	wg.Wait()

	agg := Aggregate{Requested: len(files), Wall: time.Since(begin)}
	for _, fr := range out {
		agg.SumLatency += time.Duration(fr.ElapsedMS * float64(time.Millisecond))
		if fr.Error != "" {
			agg.Failed++
			continue
		}
		agg.Succeeded++
		if fr.CacheHit {
			agg.CacheHits++
		}
		if fr.Coalesced {
			agg.Coalesced++
		}
		agg.MakespanSum += fr.Makespan
		if fr.Makespan > agg.MakespanMax {
			agg.MakespanMax = fr.Makespan
		}
	}
	return out, agg, nil
}

// WriteJSONL emits one compact JSON object per file result.
func WriteJSONL(w io.Writer, results []FileResult) error {
	enc := json.NewEncoder(w)
	for _, fr := range results {
		if err := enc.Encode(fr); err != nil {
			return err
		}
	}
	return nil
}
