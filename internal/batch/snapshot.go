package batch

import (
	"math"

	"fastsched/internal/dag"
	"fastsched/internal/sched"
)

// The warm-restart surface: a long-running server snapshots the
// engine's two content-addressed caches before it exits and restores
// them on the next start, so a restart serves known graphs from the
// result cache (bit-identical payloads, no scheduling run) and known
// graph compilations from the plan cache (no serving-time compile).
//
// The snapshot speaks in terms of the same SHA-256 content addresses
// the live caches use: a restored result entry is keyed by the exact
// digest the next identical request will derive, so correctness never
// depends on the snapshot being fresh — a stale or partial snapshot
// only costs cold runs, never wrong answers. File format, integrity
// checking and corruption quarantine live one layer up, in
// internal/server; this file only exports and reimports cache state.

// SnapshotPlacement is one node's slot in a snapshotted schedule,
// indexed implicitly by node ID.
type SnapshotPlacement struct {
	Proc   int     `json:"p"`
	Start  float64 `json:"s"`
	Finish float64 `json:"f"`
}

// SnapshotResult is one result-cache entry in exportable form.
type SnapshotResult struct {
	// Key is the request's content address (algorithm + seed + procs +
	// graph digest), exactly as the live cache computed it.
	Key [32]byte `json:"-"`
	// Algorithm is the schedule's producing algorithm, echoed in
	// results served from the restored entry.
	Algorithm string `json:"algorithm"`
	// Placements holds every node's slot, indexed by node ID.
	Placements []SnapshotPlacement `json:"placements"`
}

// SnapshotResults exports every result-cache entry. Entries whose
// schedule is not fully assigned (impossible for cached results, which
// all passed validation, but cheap to guard) are skipped. Safe to call
// concurrently with serving and after Close.
func (e *Engine) SnapshotResults() []SnapshotResult {
	if e.cache == nil {
		return nil
	}
	var out []SnapshotResult
	for i := range e.cache.shards {
		s := &e.cache.shards[i]
		s.mu.Lock()
		for el := s.order.Front(); el != nil; el = el.Next() {
			ent := el.Value.(*cacheEntry)
			if sr, ok := exportSchedule(ent.key, ent.sched); ok {
				out = append(out, sr)
			}
		}
		s.mu.Unlock()
	}
	return out
}

func exportSchedule(key resultKey, s *sched.Schedule) (SnapshotResult, bool) {
	v := s.NumNodes()
	sr := SnapshotResult{Key: key, Algorithm: s.Algorithm, Placements: make([]SnapshotPlacement, v)}
	for i := 0; i < v; i++ {
		n := dag.NodeID(i)
		if !s.Assigned(n) {
			return SnapshotResult{}, false
		}
		pl := s.Of(n)
		sr.Placements[i] = SnapshotPlacement{Proc: pl.Proc, Start: pl.Start, Finish: pl.Finish}
	}
	return sr, true
}

// RestoreResults reimports previously exported result-cache entries
// and returns how many were installed. Malformed entries (no
// placements, non-finite or negative times, inverted slots) are
// skipped rather than trusted: the snapshot file's checksum catches
// torn files, but this guards against a snapshot written by a buggy
// or future version. No-op (returns 0) on a cache-disabled engine.
func (e *Engine) RestoreResults(entries []SnapshotResult) int {
	if e.cache == nil {
		return 0
	}
	restored := 0
	for _, sr := range entries {
		s, ok := importSchedule(sr)
		if !ok {
			continue
		}
		e.cache.put(sr.Key, s)
		restored++
	}
	return restored
}

func importSchedule(sr SnapshotResult) (*sched.Schedule, bool) {
	if len(sr.Placements) == 0 {
		return nil, false
	}
	s := sched.New(len(sr.Placements))
	s.Algorithm = sr.Algorithm
	for i, pl := range sr.Placements {
		if pl.Proc < 0 || !finiteSlot(pl.Start, pl.Finish) {
			return nil, false
		}
		s.Place(dag.NodeID(i), pl.Proc, pl.Start, pl.Finish)
	}
	return s, true
}

func finiteSlot(start, finish float64) bool {
	return !math.IsNaN(start) && !math.IsInf(start, 0) &&
		!math.IsNaN(finish) && !math.IsInf(finish, 0) &&
		start >= 0 && finish >= start
}

// SnapshotGraphs exports the source graph of every cached compilation
// (nil without a plan cache). The graphs are shared read-only.
func (e *Engine) SnapshotGraphs() []*dag.Graph {
	return e.plans.Graphs()
}

// WarmGraphs recompiles the given graphs into the plan cache and
// returns how many compiled cleanly. Restore-time compilation runs
// before the server reports ready, so serving-path plan.compile_misses
// stay at zero for every snapshotted graph. Graphs that fail to
// compile (a corrupted snapshot entry) are skipped.
func (e *Engine) WarmGraphs(graphs []*dag.Graph) int {
	if e.plans == nil {
		return 0
	}
	warmed := 0
	for _, g := range graphs {
		if g == nil || g.NumNodes() == 0 {
			continue
		}
		if _, err := e.plans.Get(g); err == nil {
			warmed++
		}
	}
	return warmed
}
