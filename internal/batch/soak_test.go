package batch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"fastsched/internal/dag"
	"fastsched/internal/obs"
	"fastsched/internal/schedtest"
)

// TestSoakRandomCancellations is the engine's race/soak gate: many
// producers hammer a small worker pool with requests drawn from a pool
// of repeated graphs (so the cache and single-flight paths are hot)
// while a fraction of the contexts are cancelled at random points.
// Every successful result — cold, cached, or coalesced — must be
// bit-identical to the sequential cold-path schedule, and the engine
// must drain completely. Run under -race by the tier-1 suite.
func TestSoakRandomCancellations(t *testing.T) {
	const (
		workers   = 8
		producers = 16
		requests  = 400
		pool      = 24
	)
	rng := rand.New(rand.NewSource(2024))
	type variant struct {
		g     *dag.Graph
		procs int
		seed  int64
		want  map[dag.NodeID]struct {
			proc          int
			start, finish float64
		}
	}
	variants := make([]variant, pool)
	for i := range variants {
		v := variant{
			g:     schedtest.RandomLayered(rng, 6+rng.Intn(36)),
			procs: 1 + rng.Intn(6),
			seed:  int64(rng.Intn(4)),
		}
		ref := coldSchedule(t, v.g, "fast", v.seed, v.procs)
		v.want = make(map[dag.NodeID]struct {
			proc          int
			start, finish float64
		}, v.g.NumNodes())
		for n := 0; n < v.g.NumNodes(); n++ {
			pl := ref.Of(dag.NodeID(n))
			v.want[dag.NodeID(n)] = struct {
				proc          int
				start, finish float64
			}{pl.Proc, pl.Start, pl.Finish}
		}
		variants[i] = v
	}

	before := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	e := New(Options{Workers: workers, QueueDepth: 4, Metrics: reg})

	var wg sync.WaitGroup
	errCh := make(chan error, producers*requests/producers+1)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(p) * 7919))
			for i := 0; i < requests/producers; i++ {
				v := variants[prng.Intn(len(variants))]
				ctx := context.Background()
				var cancel context.CancelFunc
				if prng.Intn(100) < 30 { // ~30% cancelled mid-flight
					ctx, cancel = context.WithTimeout(ctx, time.Duration(prng.Intn(2_000))*time.Microsecond)
				}
				res := e.Do(ctx, Request{
					ID:    fmt.Sprintf("p%d-%d", p, i),
					Graph: v.g, Procs: v.procs, Algorithm: "fast", Seed: v.seed,
				})
				if cancel != nil {
					cancel()
				}
				if res.Err != nil {
					if !errors.Is(res.Err, context.Canceled) && !errors.Is(res.Err, context.DeadlineExceeded) {
						errCh <- fmt.Errorf("%s: unexpected error %w", res.ID, res.Err)
					}
					continue
				}
				for n, want := range v.want {
					pl := res.Schedule.Of(n)
					if pl.Proc != want.proc || pl.Start != want.start || pl.Finish != want.finish {
						errCh <- fmt.Errorf("%s (hit=%v coalesced=%v): node %d = %+v, want %+v",
							res.ID, res.CacheHit, res.Coalesced, n, pl, want)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	e.Close()
	if got := e.InFlight(); got != 0 {
		t.Fatalf("in-flight = %d after Close", got)
	}
	admitted := reg.Counter("batch.admitted").Value()
	done := reg.Counter("batch.completed").Value() + reg.Counter("batch.failed").Value()
	if admitted != done {
		t.Fatalf("admitted %d != completed+failed %d", admitted, done)
	}

	// Worker-leak check: all engine goroutines must be gone. Give the
	// runtime a moment to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 || time.Now().After(deadline) {
			if n > before+2 {
				t.Fatalf("goroutine leak: %d before, %d after", before, n)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
