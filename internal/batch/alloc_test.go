package batch

import (
	"testing"

	"fastsched/internal/example"
	"fastsched/internal/plan"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
)

// TestCacheHitPathAllocFree pins the steady-state bound of the result
// cache's hit path: deriving the request key (graph hash + option
// fold) and looking the result up in its shard allocate nothing once
// the key-buffer pool is warm. Cloning the cached schedule for the
// caller is outside the bound — each hit hands out an owned copy by
// contract.
func TestCacheHitPathAllocFree(t *testing.T) {
	if schedtest.RaceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are meaningless")
	}
	g := example.Graph()
	req := Request{Graph: g, Procs: 2, Algorithm: "fast", Seed: 3}
	c := newCache(64)
	c.put(requestKey(req), sched.New(g.NumNodes()))
	requestKey(req) // warm the key-buffer pool

	if n := testing.AllocsPerRun(100, func() {
		gk := plan.GraphKey(req.Graph)
		key := requestKeyFrom(req, gk)
		if _, ok := c.get(key); !ok {
			t.Fatal("expected a cache hit")
		}
	}); n != 0 {
		t.Fatalf("warm cache-hit lookup allocates %.1f per run, want 0", n)
	}
}

// TestRequestKeyFromAllocFree pins the "hash once" helper on its own.
func TestRequestKeyFromAllocFree(t *testing.T) {
	if schedtest.RaceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are meaningless")
	}
	req := Request{Graph: example.Graph(), Procs: 4, Algorithm: "dls", Seed: 9}
	gk := plan.GraphKey(req.Graph)
	requestKeyFrom(req, gk) // warm the buffer pool
	if n := testing.AllocsPerRun(100, func() {
		requestKeyFrom(req, gk)
	}); n != 0 {
		t.Fatalf("requestKeyFrom allocates %.1f per run, want 0", n)
	}
}
