package batch

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"fastsched/internal/obs"
	"fastsched/internal/schedtest"
)

// TestQueueDepthGaugeAccounting is the regression test for the
// admitted/rejected accounting audit: TrySubmit rejections (queue
// full), validation rejections, and post-Close rejections must never
// move the queue-depth gauge, and after the engine drains the gauge
// must read exactly zero with admitted == completed + failed.
func TestQueueDepthGaugeAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Workers: 1, QueueDepth: 2, Metrics: reg})

	gauge := reg.Gauge("batch.queue_depth")
	admitted := reg.Counter("batch.admitted")
	rejected := reg.Counter("batch.rejected")
	completed := reg.Counter("batch.completed")
	failed := reg.Counter("batch.failed")

	g := schedtest.RandomLayered(rand.New(rand.NewSource(3)), 24)

	// Occupy the single worker with a budgeted request: the anytime
	// greedy walk runs for the full wall-clock budget (the layered graph
	// has a non-empty blocking list, so the search doesn't exit early),
	// keeping the worker deterministically busy while we fill the queue
	// behind it.
	busy, err := e.Submit(context.Background(), Request{
		ID: "busy", Graph: g, Procs: 2, Budget: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has dequeued the busy job so the queue is
	// empty and its gauge contribution is gone.
	deadline := time.Now().Add(2 * time.Second)
	for gauge.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("busy job never dequeued; gauge stuck at %v", gauge.Value())
		}
		time.Sleep(time.Millisecond)
	}

	// Fill the queue to capacity behind the busy worker.
	var waits []<-chan Result
	for i := 0; i < 2; i++ {
		ch, err := e.Submit(context.Background(), Request{ID: "queued", Graph: g, Procs: 2, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, ch)
	}
	if got := gauge.Value(); got != 2 {
		t.Fatalf("queue depth with a full queue = %v, want 2", got)
	}

	// The audited paths: every rejection flavour, none may move the
	// gauge.
	before := gauge.Value()
	for i := 0; i < 5; i++ {
		if _, err := e.TrySubmit(context.Background(), Request{Graph: g, Procs: 2, Seed: 99}); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("TrySubmit on a full queue: got %v, want ErrQueueFull", err)
		}
	}
	if _, err := e.TrySubmit(context.Background(), Request{Graph: nil}); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("validation rejection: got %v, want ErrNilGraph", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Submit(cancelled, Request{Graph: g, Procs: 2, Seed: 100}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled blocking submit: got %v, want context.Canceled", err)
	}
	if got := gauge.Value(); got != before {
		t.Fatalf("rejections moved the queue-depth gauge: %v -> %v", before, got)
	}
	if got := rejected.Value(); got != 7 {
		t.Fatalf("rejected = %d, want 7 (5 queue-full + 1 validation + 1 cancelled)", got)
	}

	<-busy
	for _, ch := range waits {
		<-ch
	}
	e.Close()

	// Post-Close rejections must not move the gauge either.
	if _, err := e.TrySubmit(context.Background(), Request{Graph: g, Procs: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close submit: got %v, want ErrClosed", err)
	}
	if got := gauge.Value(); got != 0 {
		t.Fatalf("queue depth after drain = %v, want 0", got)
	}
	if a, c, f := admitted.Value(), completed.Value(), failed.Value(); a != c+f {
		t.Fatalf("admitted %d != completed %d + failed %d", a, c, f)
	}
	if admitted.Value() != 3 {
		t.Fatalf("admitted = %d, want 3", admitted.Value())
	}
}
