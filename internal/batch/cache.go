package batch

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"time"

	"fastsched/internal/dag"
	"fastsched/internal/sched"
)

// requestKey derives the content-addressed cache key of a request: a
// SHA-256 over the full scheduling input — algorithm name, seed,
// normalized processor count, and the graph's structure and weights.
// Two requests with equal keys are guaranteed to describe the same
// scheduling problem, so their (deterministic) results are
// interchangeable. Labels are excluded: they never influence a
// schedule. The per-request deadline is excluded too — a request that
// finishes inside its deadline is bit-identical to an unbounded one,
// and partial (expired) results are never cached.
//
// Adjacency is hashed in *stored* order, not canonicalized: the
// schedulers' tie-breaks (and FAST's random transfer sequence) depend
// on the order edges were inserted, so two graphs with the same edge
// set but different insertion orders can legally schedule differently.
// Hashing the graph exactly as the scheduler sees it keeps the cache's
// guarantee bit-exact; structurally equal graphs built in different
// orders simply miss each other's entries.
func requestKey(req Request) string {
	h := sha256.New()
	var buf [8]byte

	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	writeF64 := func(x float64) { writeU64(math.Float64bits(x)) }

	h.Write([]byte(req.Algorithm))
	h.Write([]byte{0})
	writeU64(uint64(req.Seed))
	procs := req.Procs
	if procs <= 0 {
		procs = 0 // every non-positive count means "unbounded"
	}
	writeU64(uint64(procs))

	g := req.Graph
	writeU64(uint64(g.NumNodes()))
	for i := 0; i < g.NumNodes(); i++ {
		writeF64(g.Weight(dag.NodeID(i)))
	}
	writeU64(uint64(g.NumEdges()))
	for i := 0; i < g.NumNodes(); i++ {
		succ := g.Succ(dag.NodeID(i))
		writeU64(uint64(len(succ)))
		for _, e := range succ { // stored order, deliberately not sorted
			writeU64(uint64(e.To))
			writeF64(e.Weight)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cache is a bounded LRU over content-addressed schedule results.
// Stored schedules are immutable by convention: the engine only ever
// hands out clones.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recent
}

type cacheEntry struct {
	key   string
	sched *sched.Schedule
}

func newCache(max int) *cache {
	return &cache{max: max, entries: make(map[string]*list.Element), order: list.New()}
}

func (c *cache) get(key string) (*sched.Schedule, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).sched, true
}

func (c *cache) put(key string, s *sched.Schedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).sched = s
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, sched: s})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the current entry count (for tests and reports).
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup deduplicates concurrent identical requests: the first
// joiner of a key becomes the leader and runs the scheduling; later
// joiners wait for the leader's published result. A minimal in-package
// single-flight (the module is dependency-free by policy).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	ready chan struct{} // closed by the leader in leave
	sched *sched.Schedule
	err   error
	// joined counts waiters for the stats in tests.
	joined int
	at     time.Time
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join registers interest in key. The first caller gets leader == true
// and must eventually call leave with the same call; others receive the
// leader's call to wait on.
func (f *flightGroup) join(key string) (leader bool, c *flightCall) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		c.joined++
		return false, c
	}
	c = &flightCall{ready: make(chan struct{}), at: time.Now()}
	f.calls[key] = c
	return true, c
}

// leave publishes the leader's result (already stored in c) and wakes
// every waiter.
func (f *flightGroup) leave(key string, c *flightCall) {
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.ready)
}
