package batch

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"

	"fastsched/internal/plan"
	"fastsched/internal/sched"
)

// resultKey is the content address of one scheduling request: a
// SHA-256 over the full scheduling input. Two requests with equal keys
// are guaranteed to describe the same scheduling problem, so their
// (deterministic) results are interchangeable.
type resultKey [32]byte

// requestKey derives the content-addressed cache key of a request.
// The graph — the expensive part of the input — is hashed exactly once
// per request via plan.GraphKey, the same digest that addresses the
// compilation cache; requestKeyFrom then folds in the scalar options
// with a second, cheap hash over 56 bytes plus the algorithm name.
//
// Labels are excluded: they never influence a schedule. The
// per-request deadline is excluded too — a request that finishes
// inside its deadline is bit-identical to an unbounded one, and
// partial (expired) results are never cached. plan.GraphKey hashes the
// adjacency in *stored* order, not canonicalized: the schedulers'
// tie-breaks (and FAST's random transfer sequence) depend on the order
// edges were inserted, so two graphs with the same edge set but
// different insertion orders can legally schedule differently.
func requestKey(req Request) resultKey {
	return requestKeyFrom(req, plan.GraphKey(req.Graph))
}

// keyBufPool recycles requestKeyFrom's serialization buffers so the
// warm lookup path allocates nothing.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// requestKeyFrom is requestKey with the graph digest already in hand
// ("hash once, use for both caches").
func requestKeyFrom(req Request, gk plan.Key) resultKey {
	bp := keyBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, req.Algorithm...)
	buf = append(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(req.Seed))
	procs := req.Procs
	if procs <= 0 {
		procs = 0 // every non-positive count means "unbounded"
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(procs))
	buf = append(buf, gk[:]...)
	k := resultKey(sha256.Sum256(buf))
	*bp = buf
	keyBufPool.Put(bp)
	return k
}

// cacheShards stripes the result cache. Power of two so the shard
// index is a mask over the key's first byte — which is uniformly
// distributed (SHA-256 output), so capacity and lock contention spread
// evenly across shards instead of serializing every worker behind one
// mutex.
const cacheShards = 16

// cache is a bounded, lock-striped LRU over content-addressed schedule
// results. Stored schedules are immutable by convention: the engine
// only ever hands out clones. The capacity bound is enforced per shard
// at max/cacheShards (minimum 1), and LRU order is likewise per shard;
// what a hit returns is unchanged from the single-lock cache — the
// striping only relaxes *which* entry is evicted under pressure, never
// the bit-identity of a hit.
type cache struct {
	shards [cacheShards]resultShard
}

type resultShard struct {
	mu      sync.Mutex
	max     int
	entries map[resultKey]*list.Element
	order   *list.List // front = most recent
}

type cacheEntry struct {
	key   resultKey
	sched *sched.Schedule
}

func newCache(max int) *cache {
	perShard := max / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &cache{}
	for i := range c.shards {
		c.shards[i] = resultShard{
			max:     perShard,
			entries: make(map[resultKey]*list.Element),
			order:   list.New(),
		}
	}
	return c
}

func (c *cache) shard(key resultKey) *resultShard {
	return &c.shards[key[0]&(cacheShards-1)]
}

func (c *cache) get(key resultKey) (*sched.Schedule, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).sched, true
}

func (c *cache) put(key resultKey, sc *sched.Schedule) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).sched = sc
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, sched: sc})
	for s.order.Len() > s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the current entry count across shards (for tests and
// reports).
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// flightGroup deduplicates concurrent identical requests: the first
// joiner of a key becomes the leader and runs the scheduling; later
// joiners wait for the leader's published result. A minimal in-package
// single-flight (the module is dependency-free by policy). Flight
// entries are transient — they live only while a run is in progress —
// so a single mutex stays uncontended and the single-flight semantics
// are untouched by the result cache's striping.
type flightGroup struct {
	mu    sync.Mutex
	calls map[resultKey]*flightCall
}

type flightCall struct {
	ready chan struct{} // closed by the leader in leave
	sched *sched.Schedule
	err   error
	// joined counts waiters for the stats in tests.
	joined int
	at     time.Time
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[resultKey]*flightCall)}
}

// join registers interest in key. The first caller gets leader == true
// and must eventually call leave with the same call; others receive the
// leader's call to wait on.
func (f *flightGroup) join(key resultKey) (leader bool, c *flightCall) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		c.joined++
		return false, c
	}
	c = &flightCall{ready: make(chan struct{}), at: time.Now()}
	f.calls[key] = c
	return true, c
}

// leave publishes the leader's result (already stored in c) and wakes
// every waiter.
func (f *flightGroup) leave(key resultKey, c *flightCall) {
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.ready)
}
