package batch

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"fastsched/internal/dag"
	"fastsched/internal/schedtest"
)

// graphJSON serializes g for the fuzz corpus.
func graphJSON(g *dag.Graph) []byte {
	var buf bytes.Buffer
	if err := dag.WriteJSON(&buf, g, "fuzz"); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzBatchSubmit throws hostile inputs at the engine: malformed graph
// bytes, cancelled contexts, negative deadlines and budgets, unknown
// algorithms. The engine must always answer with a typed error or a
// valid schedule — never panic — and must drain its workers on Close
// (a leak deadlocks the engine's Close and times the target out).
func FuzzBatchSubmit(f *testing.F) {
	f.Add(graphJSON(schedtest.Chain(4, 1)), int64(1), 2, int64(0), false, uint8(0))
	f.Add(graphJSON(schedtest.ForkJoin(3, 2)), int64(7), 0, int64(time.Millisecond), true, uint8(1))
	f.Add([]byte("{not json"), int64(0), 1, int64(-1), false, uint8(2))
	f.Add([]byte(`{"nodes":[{"id":0,"weight":-5}],"edges":[]}`), int64(3), 4, int64(0), false, uint8(0))
	f.Add([]byte(`{"nodes":[{"id":0,"weight":1},{"id":1,"weight":1}],"edges":[{"from":0,"to":0,"weight":1}]}`),
		int64(2), 3, int64(12345), true, uint8(3))

	algos := []string{"fast", "etf", "", "definitely-not-an-algorithm"}

	f.Fuzz(func(t *testing.T, graphBytes []byte, seed int64, procs int, deadlineNS int64, cancelled bool, algoPick uint8) {
		e := New(Options{Workers: 2, QueueDepth: 2})
		defer e.Close()

		req := Request{
			ID:        "fuzz",
			Procs:     procs,
			Seed:      seed,
			Algorithm: algos[int(algoPick)%len(algos)],
			Deadline:  time.Duration(deadlineNS),
		}
		g, _, gerr := dag.ReadJSON(bytes.NewReader(graphBytes))
		if gerr == nil {
			req.Graph = g
		}

		ctx := context.Background()
		if cancelled {
			var cancel context.CancelFunc
			ctx, cancel = context.WithCancel(ctx)
			cancel()
		}

		res := e.Do(ctx, req)
		if res.Err == nil {
			if res.Schedule == nil {
				t.Fatal("no error and no schedule")
			}
			return
		}
		// Every failure must be one of the engine's typed errors or a
		// context error; anything else is an escape from the contract.
		typed := []error{
			ErrNilGraph, ErrEmptyGraph, ErrBadDeadline, ErrBadBudget,
			ErrBadAlgorithm, ErrBadGraph, ErrClosed, ErrQueueFull,
			context.Canceled, context.DeadlineExceeded,
		}
		for _, want := range typed {
			if errors.Is(res.Err, want) {
				// Spot-check the headline contracts. Validation order:
				// graph presence is checked before the deadline, so the
				// deadline guarantee only binds on a present, non-empty
				// graph.
				if req.Graph == nil && !errors.Is(res.Err, ErrNilGraph) {
					t.Fatalf("nil graph produced %v, want ErrNilGraph", res.Err)
				}
				if req.Deadline < 0 && req.Graph != nil && req.Graph.NumNodes() > 0 &&
					!errors.Is(res.Err, ErrBadDeadline) {
					t.Fatalf("negative deadline produced %v, want ErrBadDeadline", res.Err)
				}
				return
			}
		}
		t.Fatalf("untyped error escaped the engine: %v", res.Err)
	})
}
