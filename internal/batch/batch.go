// Package batch is the serving layer of the repository: a concurrent
// multi-DAG scheduling engine that accepts a stream of scheduling
// requests (graph + processor count + algorithm + per-request deadline
// or search budget) and drives them through a bounded worker pool with
// backpressure.
//
// The engine reuses the context plumbing of the FAST family (a request
// deadline becomes a context deadline handed to Scheduler.Find) and the
// obs metrics core: queue depth gauge, per-request latency histogram,
// admission/rejection/completion counters, cache hit and coalescing
// counters. A content-addressed result cache (graph + options hash →
// schedule) with single-flight deduplication coalesces identical
// requests so a burst of duplicate graphs costs one scheduling run.
//
// Concurrency contract: Submit and Do are safe for concurrent use from
// any number of producers. Close drains the queue and blocks until
// every worker has exited; Submit after Close returns ErrClosed. A
// schedule returned by the engine is owned by the caller — cache hits
// and coalesced waiters each receive their own clone, so results can be
// mutated freely and are always bit-identical to a cold scheduling run.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/fast"
	"fastsched/internal/obs"
	"fastsched/internal/plan"
	"fastsched/internal/sched"
)

// Typed errors. Every request-validation failure is one of these
// (possibly wrapped with detail), so callers and the fuzz harness can
// classify rejections with errors.Is.
var (
	// ErrClosed marks a submission to an engine that has been closed.
	ErrClosed = errors.New("batch: engine closed")
	// ErrQueueFull marks a non-blocking submission rejected because the
	// request queue is at capacity (backpressure).
	ErrQueueFull = errors.New("batch: queue full")
	// ErrNilGraph marks a request without a graph.
	ErrNilGraph = errors.New("batch: nil graph")
	// ErrEmptyGraph marks a request whose graph has no nodes.
	ErrEmptyGraph = errors.New("batch: empty graph")
	// ErrBadDeadline marks a negative per-request deadline.
	ErrBadDeadline = errors.New("batch: negative deadline")
	// ErrBadBudget marks a negative per-request search budget.
	ErrBadBudget = errors.New("batch: negative budget")
	// ErrBadAlgorithm marks an algorithm name the registry rejects.
	ErrBadAlgorithm = errors.New("batch: unknown algorithm")
	// ErrBadGraph marks a graph that fails structural validation
	// (cycles, NaN/negative weights, corrupt adjacency).
	ErrBadGraph = errors.New("batch: invalid graph")
)

// DefaultAlgorithm is used when Request.Algorithm is empty.
const DefaultAlgorithm = "fast"

// Request is one scheduling job.
type Request struct {
	// ID is an opaque caller tag echoed in the Result (a file name, a
	// tenant ID); the engine never interprets it.
	ID string
	// Graph is the task graph to schedule. The engine treats it as
	// read-only; callers must not mutate it while the request is in
	// flight.
	Graph *dag.Graph
	// Procs is the processor count (<= 0: unbounded, one per node).
	Procs int
	// Algorithm names the scheduler (the casch registry names: fast,
	// pfast, etf, dls, ...). Empty selects DefaultAlgorithm.
	Algorithm string
	// Seed drives the FAST family's local search.
	Seed int64
	// Deadline, when positive, bounds the wall-clock scheduling time of
	// this request; on expiry the FAST family returns its best partial
	// schedule together with context.DeadlineExceeded. Zero means no
	// per-request deadline; negative is rejected with ErrBadDeadline.
	Deadline time.Duration
	// Budget, when positive, makes the FAST greedy search anytime for
	// this request (see fast.Options.Budget). Budgeted runs are
	// wall-clock dependent and therefore bypass the result cache.
	// Negative is rejected with ErrBadBudget.
	Budget time.Duration
	// NoCache bypasses the result cache for this request.
	NoCache bool
}

// Result is the outcome of one request.
type Result struct {
	// ID echoes Request.ID.
	ID string
	// Algorithm is the resolved scheduler name.
	Algorithm string
	// Schedule is the produced schedule; nil when Err is a hard
	// failure. On a deadline expiry it may be a valid partial-search
	// best-so-far schedule alongside Err == context.DeadlineExceeded.
	Schedule *sched.Schedule
	// Makespan is Schedule.Length() (0 when Schedule is nil).
	Makespan float64
	// ProcsUsed is Schedule.ProcsUsed() (0 when Schedule is nil).
	ProcsUsed int
	// CacheHit reports that the schedule came from the result cache.
	CacheHit bool
	// Coalesced reports that this request waited on an identical
	// in-flight request instead of scheduling on its own.
	Coalesced bool
	// Elapsed is the request's latency inside the engine: queue wait
	// plus scheduling time.
	Elapsed time.Duration
	// Err is the request's failure, nil on success.
	Err error
}

// Options configures an Engine.
type Options struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the request queue; Submit blocks (and TrySubmit
	// rejects) when it is full. Default: 2 × Workers.
	QueueDepth int
	// CacheSize bounds the result cache in entries (default 1024);
	// negative disables caching entirely.
	CacheSize int
	// PlanCacheSize bounds the graph-compilation cache in compiled
	// graphs (default plan.DefaultCacheSize); negative disables it, in
	// which case every run re-derives the graph artifacts ad hoc.
	PlanCacheSize int
	// DisableCompilation forces the legacy serving path: no plan cache
	// and no compiled dispatch, every request re-analyzing its graph
	// from scratch. Results are bit-identical either way (pinned by the
	// differential tests); the switch exists for benchmarking the
	// compiled path against the pre-compilation engine.
	DisableCompilation bool
	// Metrics, when non-nil, receives the engine's telemetry under the
	// batch.* namespace. Nil disables it at the usual obs zero cost.
	Metrics obs.Sink
}

// Engine is the concurrent batch scheduler. Create with New, feed with
// Submit/Do, and Close when done.
type Engine struct {
	opts   Options
	queue  chan *job
	wg     sync.WaitGroup // workers
	subWG  sync.WaitGroup // blocking submitters not yet enqueued
	cache  *cache
	plans  *plan.Cache // compiled-graph cache; nil when compilation is off
	flight *flightGroup

	mu     sync.Mutex
	closed bool

	inFlight atomic.Int64 // jobs admitted and not yet completed

	// Metrics, resolved once; all nil (and free) without a sink.
	mQueueDepth *obs.Gauge     // batch.queue_depth
	mAdmitted   *obs.Counter   // batch.admitted
	mRejected   *obs.Counter   // batch.rejected
	mCompleted  *obs.Counter   // batch.completed
	mFailed     *obs.Counter   // batch.failed
	mCacheHits  *obs.Counter   // batch.cache_hits
	mCoalesced  *obs.Counter   // batch.coalesced
	mLatency    *obs.Histogram // batch.latency_ms
}

// job is one admitted request plus its completion channel.
type job struct {
	ctx    context.Context
	req    Request
	queued time.Time
	done   chan Result // buffered(1); exactly one send
	gk     plan.Key    // graph content hash, computed at admission
	hasGK  bool        // gk is set (engine has a plan cache)
}

// New returns a started engine. The returned engine owns Workers
// goroutines until Close.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 1024
	}
	e := &Engine{
		opts:   opts,
		queue:  make(chan *job, opts.QueueDepth),
		flight: newFlightGroup(),
	}
	if opts.CacheSize > 0 {
		e.cache = newCache(opts.CacheSize)
	}
	if !opts.DisableCompilation && opts.PlanCacheSize >= 0 {
		e.plans = plan.NewCache(opts.PlanCacheSize, opts.Metrics)
	}
	if s := opts.Metrics; s != nil {
		e.mQueueDepth = s.Gauge("batch.queue_depth")
		e.mAdmitted = s.Counter("batch.admitted")
		e.mRejected = s.Counter("batch.rejected")
		e.mCompleted = s.Counter("batch.completed")
		e.mFailed = s.Counter("batch.failed")
		e.mCacheHits = s.Counter("batch.cache_hits")
		e.mCoalesced = s.Counter("batch.coalesced")
		e.mLatency = s.Histogram("batch.latency_ms", obs.ExpBuckets(0.01, 4, 12))
	}
	for w := 0; w < opts.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// validate rejects malformed requests with typed errors before they
// consume a queue slot.
//
// The O(v+e) structural graph check (cycle detection, weight checks) is
// memoized by content: every graph the engine has ever compiled passed
// Graph.Validate before reaching the compiler, so a compilation-cache
// hit on the graph's content key proves the identical bytes are valid
// and the re-check is pure overhead. The SHA-256 computed for that
// lookup is returned alongside (hasGK) and carried on the job into
// execute, preserving the hash-once-per-request contract. A cache miss
// — first sight of a graph, an evicted entry, or a compilation-disabled
// engine — always runs the full structural check.
func (e *Engine) validate(req Request) (gk plan.Key, hasGK bool, err error) {
	if req.Graph == nil {
		return gk, false, ErrNilGraph
	}
	if req.Graph.NumNodes() == 0 {
		return gk, false, ErrEmptyGraph
	}
	if req.Deadline < 0 {
		return gk, false, fmt.Errorf("%w: %v", ErrBadDeadline, req.Deadline)
	}
	if req.Budget < 0 {
		return gk, false, fmt.Errorf("%w: %v", ErrBadBudget, req.Budget)
	}
	known := false
	if e.plans != nil {
		gk, hasGK = plan.GraphKey(req.Graph), true
		known = e.plans.Peek(gk)
	}
	if !known {
		if err := req.Graph.Validate(); err != nil {
			return gk, hasGK, fmt.Errorf("%w: %v", ErrBadGraph, err)
		}
	}
	name := req.Algorithm
	if name == "" {
		name = DefaultAlgorithm
	}
	if _, err := casch.NewScheduler(name, req.Seed); err != nil {
		return gk, hasGK, fmt.Errorf("%w: %v", ErrBadAlgorithm, err)
	}
	return gk, hasGK, nil
}

// Submit validates and enqueues a request, blocking while the queue is
// full (backpressure). It returns a channel that delivers exactly one
// Result. ctx cancels both the queue wait and the scheduling run;
// validation failures and ErrClosed are returned synchronously.
func (e *Engine) Submit(ctx context.Context, req Request) (<-chan Result, error) {
	return e.submit(ctx, req, true)
}

// TrySubmit is Submit without blocking: a full queue is rejected
// immediately with ErrQueueFull, making backpressure visible to
// load-shedding callers.
func (e *Engine) TrySubmit(ctx context.Context, req Request) (<-chan Result, error) {
	return e.submit(ctx, req, false)
}

func (e *Engine) submit(ctx context.Context, req Request, wait bool) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	gk, hasGK, err := e.validate(req)
	if err != nil {
		e.reject()
		return nil, err
	}
	if req.Algorithm == "" {
		req.Algorithm = DefaultAlgorithm
	}
	j := &job{ctx: ctx, req: req, queued: time.Now(), done: make(chan Result, 1), gk: gk, hasGK: hasGK}

	// The closed check and the enqueue race against Close closing the
	// channel; holding mu across the send is the simplest correct
	// ordering and the send itself never blocks for long when wait is
	// false. For the blocking path, re-check closed around a select so
	// Close cannot close the channel mid-send.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.reject()
		return nil, ErrClosed
	}
	if !wait {
		select {
		case e.queue <- j:
			e.admit()
			e.mu.Unlock()
			return j.done, nil
		default:
			e.mu.Unlock()
			e.reject()
			return nil, ErrQueueFull
		}
	}
	// Blocking admission: try a fast non-blocking send under the lock,
	// then fall back to a lock-free blocking wait. Close waits for
	// pending blocking sends via subWG before closing the channel, so a
	// submitter can never send on a closed queue.
	select {
	case e.queue <- j:
		e.admit()
		e.mu.Unlock()
		return j.done, nil
	default:
	}
	e.subWG.Add(1)
	e.mu.Unlock()
	defer e.subWG.Done()
	select {
	case e.queue <- j:
		e.admit()
		return j.done, nil
	case <-ctx.Done():
		e.reject()
		return nil, ctx.Err()
	}
}

// admit and reject are the only two exits of the submission path, and
// they partition it: every call to submit ends in exactly one of them.
// The queue-depth gauge moves only on the admit side — incremented
// here, decremented once by the worker that dequeues the job — so the
// accounting invariants are
//
//	admitted == completed + failed   (after the engine drains)
//	queue_depth == admitted - dequeued, and 0 after Close
//	rejected requests never touch queue_depth or in-flight
//
// pinned by TestQueueDepthGaugeAccounting. A rejection that decremented
// the gauge (or an admission path that skipped admit) would leave the
// gauge permanently skewed, which is exactly what load-shedding callers
// watch to decide whether to shed.
func (e *Engine) admit() {
	e.mAdmitted.Inc()
	e.mQueueDepth.Add(1)
	e.inFlight.Add(1)
}

func (e *Engine) reject() {
	e.mRejected.Inc()
}

// Do is the synchronous convenience wrapper: submit and wait. A context
// cancellation while queued or scheduling surfaces as Result.Err.
func (e *Engine) Do(ctx context.Context, req Request) Result {
	ch, err := e.Submit(ctx, req)
	if err != nil {
		return Result{ID: req.ID, Algorithm: req.Algorithm, Err: err}
	}
	return <-ch
}

// InFlight returns the number of admitted-but-uncompleted requests.
func (e *Engine) InFlight() int { return int(e.inFlight.Load()) }

// Close stops admission, drains every already-admitted request, and
// blocks until all workers have exited. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// Blocking submitters that passed the closed check keep their right
	// to enqueue (workers are still draining); wait them out before
	// closing the channel.
	e.subWG.Wait()
	close(e.queue)
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.mQueueDepth.Add(-1)
		res := e.execute(j)
		res.Elapsed = time.Since(j.queued)
		e.mLatency.Observe(float64(res.Elapsed) / float64(time.Millisecond))
		if res.Err != nil {
			e.mFailed.Inc()
		} else {
			e.mCompleted.Inc()
		}
		e.inFlight.Add(-1)
		j.done <- res
	}
}

// execute runs one admitted job: cache lookup, single-flight coalesce,
// cold scheduling run, cache fill.
func (e *Engine) execute(j *job) Result {
	req := j.req
	res := Result{ID: req.ID, Algorithm: req.Algorithm}
	if err := j.ctx.Err(); err != nil {
		// Cancelled while queued: don't pay for a scheduling run the
		// caller no longer wants.
		res.Err = err
		return res
	}

	// Hash the graph once: admission already computed the digest when
	// the engine has a plan cache (it addresses the compilation cache
	// and memoizes validation); it also seeds the result-cache key.
	var gk plan.Key
	cacheable := !req.NoCache && req.Budget == 0 && e.cache != nil
	if j.hasGK {
		gk = j.gk
	} else if cacheable {
		gk = plan.GraphKey(req.Graph)
	}
	var key resultKey
	if cacheable {
		key = requestKeyFrom(req, gk)
		if s, ok := e.cache.get(key); ok {
			e.mCacheHits.Inc()
			res.Schedule = s.Clone()
			res.Makespan = res.Schedule.Length()
			res.ProcsUsed = res.Schedule.ProcsUsed()
			res.CacheHit = true
			return res
		}
		// Single-flight: the first request for a key schedules; every
		// concurrent duplicate waits for that run and gets a clone.
		leader, call := e.flight.join(key)
		if !leader {
			select {
			case <-call.ready:
			case <-j.ctx.Done():
				res.Err = j.ctx.Err()
				return res
			}
			if call.err == nil && call.sched != nil {
				e.mCoalesced.Inc()
				res.Schedule = call.sched.Clone()
				res.Makespan = res.Schedule.Length()
				res.ProcsUsed = res.Schedule.ProcsUsed()
				res.Coalesced = true
				return res
			}
			// The leader failed (or returned a partial result); fall
			// through and run this request on its own rather than
			// propagating another caller's context error.
		} else {
			defer func() {
				// Publish only clean results to waiters and the cache:
				// partial deadline results are wall-clock dependent. One
				// private clone backs both, so the leader's caller owns
				// its schedule outright; waiters and future cache hits
				// clone again from the published copy.
				if res.Err == nil && res.Schedule != nil {
					published := res.Schedule.Clone()
					call.sched = published
					e.cache.put(key, published)
				}
				call.err = res.Err
				e.flight.leave(key, call)
			}()
		}
	}

	schedule, err := e.run(j.ctx, req, gk)
	if schedule != nil {
		res.Schedule = schedule
		res.Makespan = schedule.Length()
		res.ProcsUsed = schedule.ProcsUsed()
	}
	res.Err = err
	return res
}

// run performs one cold scheduling run under the request's context and
// deadline. With the plan cache enabled, schedulers that accept a
// compiled graph are dispatched through it — the compilation happens
// (and is cached) once per unique graph; the produced schedules are
// bit-identical to the ad-hoc path (pinned by the differential tests).
func (e *Engine) run(ctx context.Context, req Request, gk plan.Key) (*sched.Schedule, error) {
	s, err := casch.NewScheduler(req.Algorithm, req.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadAlgorithm, err)
	}
	if req.Budget > 0 {
		b, ok := s.(interface {
			WithBudget(time.Duration) *fast.Scheduler
		})
		if !ok {
			return nil, fmt.Errorf("%w: budget is only supported by the FAST family, not %q", ErrBadBudget, req.Algorithm)
		}
		s = b.WithBudget(req.Budget)
	}
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	type compiledFinder interface {
		FindCompiled(ctx context.Context, cg *plan.CompiledGraph, procs int) (*sched.Schedule, error)
	}
	type compiledScheduler interface {
		ScheduleCompiled(cg *plan.CompiledGraph, procs int) (*sched.Schedule, error)
	}
	type finder interface {
		Find(ctx context.Context, g *dag.Graph, procs int) (*sched.Schedule, error)
	}
	var cg *plan.CompiledGraph
	if e.plans != nil {
		switch s.(type) {
		case compiledFinder, compiledScheduler:
			if cg, err = e.plans.GetKeyed(req.Graph, gk); err != nil {
				// Unreachable after validate (Compile only fails on empty
				// or cyclic graphs), but don't run with a nil plan.
				return nil, fmt.Errorf("%w: %v", ErrBadGraph, err)
			}
		}
	}
	var out *sched.Schedule
	var err2 error
	if cg != nil {
		// cg is only compiled when s matched one of the two interfaces.
		switch cs := s.(type) {
		case compiledFinder: // the FAST family: context plumbed through
			out, err2 = cs.FindCompiled(ctx, cg, req.Procs)
		case compiledScheduler:
			// Compiled baselines have no context plumbing; honour the
			// context at the request boundary at least.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			out, err2 = cs.ScheduleCompiled(cg, req.Procs)
		}
	} else if f, ok := s.(finder); ok {
		out, err2 = f.Find(ctx, req.Graph, req.Procs)
	} else {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		out, err2 = s.Schedule(req.Graph, req.Procs)
	}
	if out != nil && err2 == nil {
		if verr := sched.Validate(req.Graph, out); verr != nil {
			return nil, fmt.Errorf("batch: %s produced an invalid schedule: %w", req.Algorithm, verr)
		}
	}
	return out, err2
}
