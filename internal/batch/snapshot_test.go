package batch

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/obs"
	"fastsched/internal/plan"
	"fastsched/internal/schedtest"
)

// TestSnapshotRoundTrip proves the warm-restart contract at the engine
// layer: results exported from one engine and restored into a fresh one
// are served as cache hits, bit-identical to the original run, and the
// plan-cache graphs survive with their content keys intact (the JSON
// round-trip happens one layer up; here the graphs are shared
// directly).
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := make([]*dag.Graph, 8)
	for i := range graphs {
		graphs[i] = schedtest.RandomLayered(rng, 8+rng.Intn(24))
	}

	e1 := New(Options{Workers: 2})
	want := make([]Result, len(graphs))
	for i, g := range graphs {
		res := e1.Do(context.Background(), Request{ID: "warm", Graph: g, Procs: 3, Seed: int64(i)})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want[i] = res
	}
	results := e1.SnapshotResults()
	plans := e1.SnapshotGraphs()
	e1.Close()

	if len(results) != len(graphs) {
		t.Fatalf("snapshotted %d results, want %d", len(results), len(graphs))
	}
	if len(plans) != len(graphs) {
		t.Fatalf("snapshotted %d plan graphs, want %d", len(plans), len(graphs))
	}

	reg := obs.NewRegistry()
	e2 := New(Options{Workers: 2, Metrics: reg})
	defer e2.Close()
	if n := e2.RestoreResults(results); n != len(results) {
		t.Fatalf("restored %d results, want %d", n, len(results))
	}
	if n := e2.WarmGraphs(plans); n != len(plans) {
		t.Fatalf("warmed %d plans, want %d", n, len(plans))
	}
	missesAfterWarm := reg.Counter("plan.compile_misses").Value()

	for i, g := range graphs {
		res := e2.Do(context.Background(), Request{ID: "warm", Graph: g, Procs: 3, Seed: int64(i)})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !res.CacheHit {
			t.Fatalf("graph %d: restored engine missed the result cache", i)
		}
		sameSchedule(t, want[i].Schedule, res.Schedule)
	}
	if hits := reg.Counter("batch.cache_hits").Value(); hits != int64(len(graphs)) {
		t.Fatalf("cache_hits = %d, want %d", hits, len(graphs))
	}
	// Serving from the warm engine must not recompile: every compile
	// miss happened at restore time, before serving started.
	if got := reg.Counter("plan.compile_misses").Value(); got != missesAfterWarm {
		t.Fatalf("serving recompiled: compile_misses %d -> %d", missesAfterWarm, got)
	}

	// The plan-cache keys must be reproducible from the snapshotted
	// graphs — this is what makes the digest-addressed snapshot sound.
	for i, g := range graphs {
		if plan.GraphKey(g) != plan.GraphKey(plans[i%len(plans)]) && i == 0 {
			// Graphs() order is unspecified; just check key set equality.
			break
		}
	}
	keys := map[plan.Key]bool{}
	for _, g := range plans {
		keys[plan.GraphKey(g)] = true
	}
	for i, g := range graphs {
		if !keys[plan.GraphKey(g)] {
			t.Fatalf("graph %d's key missing from the snapshotted plan set", i)
		}
	}
}

// TestRestoreResultsRejectsMalformed: entries with non-finite or
// negative times, inverted slots, negative processors, or no
// placements are skipped, not installed.
func TestRestoreResultsRejectsMalformed(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	bad := []SnapshotResult{
		{Algorithm: "fast"}, // no placements
		{Algorithm: "fast", Placements: []SnapshotPlacement{{Proc: -1, Start: 0, Finish: 1}}},
		{Algorithm: "fast", Placements: []SnapshotPlacement{{Proc: 0, Start: math.NaN(), Finish: 1}}},
		{Algorithm: "fast", Placements: []SnapshotPlacement{{Proc: 0, Start: 0, Finish: math.Inf(1)}}},
		{Algorithm: "fast", Placements: []SnapshotPlacement{{Proc: 0, Start: 2, Finish: 1}}},
		{Algorithm: "fast", Placements: []SnapshotPlacement{{Proc: 0, Start: -3, Finish: 1}}},
	}
	if n := e.RestoreResults(bad); n != 0 {
		t.Fatalf("restored %d malformed entries, want 0", n)
	}
	if got := e.cache.len(); got != 0 {
		t.Fatalf("cache holds %d entries after malformed restore, want 0", got)
	}
}
