package batch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/workload"
)

// throughputRequests builds the 200-request serving workload of the
// throughput benchmarks: 40 distinct mid-size random DAGs × 5 seeds.
// 40 unique graphs means the compiled path's plan cache reaches steady
// state (40 entries, hit on every subsequent request) while the legacy
// path re-analyzes each graph on all 5 of its requests.
func throughputRequests(b *testing.B) []Request {
	b.Helper()
	reqs := make([]Request, 0, 200)
	for gi := 0; gi < 40; gi++ {
		g, err := workload.Random(workload.RandomOpts{V: 240, Seed: int64(1000 + gi), MeanInDegree: 3})
		if err != nil {
			b.Fatal(err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			reqs = append(reqs, Request{
				ID:        fmt.Sprintf("g%d/s%d", gi, seed),
				Graph:     g,
				Procs:     8,
				Algorithm: "fast",
				Seed:      seed,
			})
		}
	}
	return reqs
}

// runBatch pushes every request through the engine and waits for all
// results, exactly as a serving loop would.
func runBatch(b *testing.B, e *Engine, reqs []Request) {
	b.Helper()
	ctx := context.Background()
	chs := make([]<-chan Result, len(reqs))
	for i, r := range reqs {
		ch, err := e.Submit(ctx, r)
		if err != nil {
			b.Fatal(err)
		}
		chs[i] = ch
	}
	for i, ch := range chs {
		if res := <-ch; res.Err != nil {
			b.Fatalf("request %s: %v", reqs[i].ID, res.Err)
		}
	}
}

// BenchmarkBatchThroughput measures end-to-end engine throughput on
// the 200-request workload. The "compiled" variants use the
// compiled-plan serving path; "legacy" forces per-request graph
// re-analysis (the pre-compilation engine). The result cache is
// disabled in both so every request performs a real scheduling run —
// the quantity under test is scheduling throughput, not cache hits.
// scripts/bench.sh derives requests/second and the compiled/legacy
// speedup from these numbers into BENCH_throughput.json.
func BenchmarkBatchThroughput(b *testing.B) {
	reqs := throughputRequests(b)
	for _, workers := range []int{1, 4, 8} {
		for _, mode := range []string{"compiled", "legacy"} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				e := New(Options{
					Workers:            workers,
					QueueDepth:         len(reqs),
					CacheSize:          -1,
					DisableCompilation: mode == "legacy",
				})
				defer e.Close()
				runBatch(b, e, reqs) // warm: plan cache + scratch pools
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runBatch(b, e, reqs)
				}
			})
		}
	}
}

// BenchmarkDirIngest measures RunDir's pipelined directory loading on
// an on-disk corpus, against the engine's full serving path.
func BenchmarkDirIngest(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < 40; i++ {
		g, err := workload.Random(workload.RandomOpts{V: 60, Seed: int64(i), MeanInDegree: 3})
		if err != nil {
			b.Fatal(err)
		}
		writeGraphFile(b, dir, fmt.Sprintf("g%03d.json", i), g)
	}
	e := New(Options{Workers: 4})
	defer e.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunDir(ctx, e, dir, Request{Algorithm: "fast", Procs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func writeGraphFile(tb testing.TB, dir, name string, g *dag.Graph) {
	tb.Helper()
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		tb.Fatal(err)
	}
	if err := dag.WriteJSON(f, g, name); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
}
