package batch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/obs"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
)

// sameSchedule asserts two schedules are bit-identical: every node on
// the same processor with the same exact start and finish.
func sameSchedule(t *testing.T, want, got *sched.Schedule) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() {
		t.Fatalf("schedule sizes differ: %d vs %d", want.NumNodes(), got.NumNodes())
	}
	for i := 0; i < want.NumNodes(); i++ {
		n := dag.NodeID(i)
		if want.Of(n) != got.Of(n) {
			t.Fatalf("node %d: %+v vs %+v", n, want.Of(n), got.Of(n))
		}
	}
}

// coldSchedule is the reference path: one fresh scheduler per call,
// exactly what the engine runs on a cache miss.
func coldSchedule(t *testing.T, g *dag.Graph, algo string, seed int64, procs int) *sched.Schedule {
	t.Helper()
	s, err := casch.NewScheduler(algo, seed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Schedule(g, procs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDoMatchesColdRun(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := schedtest.RandomLayered(rng, 5+rng.Intn(40))
		res := e.Do(context.Background(), Request{Graph: g, Procs: 4, Algorithm: "fast", Seed: 3, NoCache: true})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		sameSchedule(t, coldSchedule(t, g, "fast", 3, 4), res.Schedule)
		if res.Makespan != res.Schedule.Length() {
			t.Fatalf("makespan %v != schedule length %v", res.Makespan, res.Schedule.Length())
		}
	}
}

func TestCacheHitIsBitIdenticalAndCounted(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Workers: 4, Metrics: reg})
	defer e.Close()
	g := schedtest.RandomLayered(rand.New(rand.NewSource(11)), 30)
	req := Request{Graph: g, Procs: 3, Algorithm: "fast", Seed: 9}

	first := e.Do(context.Background(), req)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Fatal("cold run reported as cache hit")
	}
	for i := 0; i < 50; i++ {
		res := e.Do(context.Background(), req)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !res.CacheHit {
			t.Fatalf("request %d missed a warm cache", i)
		}
		sameSchedule(t, first.Schedule, res.Schedule)
	}
	if hits := reg.Counter("batch.cache_hits").Value(); hits != 50 {
		t.Fatalf("cache_hits = %d, want 50", hits)
	}
	if got := reg.Counter("batch.completed").Value(); got != 51 {
		t.Fatalf("completed = %d, want 51", got)
	}
}

func TestConcurrentDuplicatesCoalesceOrHit(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Workers: 4, Metrics: reg})
	defer e.Close()
	g := schedtest.RandomLayered(rand.New(rand.NewSource(13)), 200)
	req := Request{Graph: g, Procs: 8, Algorithm: "fast", Seed: 5}

	const n = 32
	results := make([]Result, n)
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			results[i] = e.Do(context.Background(), req)
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	want := coldSchedule(t, g, "fast", 5, 8)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		sameSchedule(t, want, res.Schedule)
	}
	hits := reg.Counter("batch.cache_hits").Value()
	coal := reg.Counter("batch.coalesced").Value()
	// Every request but the handful of cold leaders must have been
	// served from the cache or a coalesced in-flight run.
	if hits+coal < n-8 {
		t.Fatalf("cache_hits=%d coalesced=%d: expected at least %d of %d deduplicated", hits, coal, n-8, n)
	}
}

func TestTypedValidationErrors(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	ctx := context.Background()
	ok := schedtest.Chain(3, 1)

	cyclic := dag.New(2)
	a := cyclic.AddNode("", 1)
	b := cyclic.AddNode("", 1)
	cyclic.MustAddEdge(a, b, 1)
	cyclic.MustAddEdge(b, a, 1)

	badWeight := dag.New(1)
	badWeight.AddNode("", -3)

	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"NilGraph", Request{}, ErrNilGraph},
		{"EmptyGraph", Request{Graph: dag.New(0)}, ErrEmptyGraph},
		{"NegativeDeadline", Request{Graph: ok, Deadline: -time.Second}, ErrBadDeadline},
		{"NegativeBudget", Request{Graph: ok, Budget: -time.Second}, ErrBadBudget},
		{"UnknownAlgorithm", Request{Graph: ok, Algorithm: "nope"}, ErrBadAlgorithm},
		{"CyclicGraph", Request{Graph: cyclic}, ErrBadGraph},
		{"NegativeWeight", Request{Graph: badWeight}, ErrBadGraph},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := e.Submit(ctx, c.req); !errors.Is(err, c.want) {
				t.Fatalf("Submit() error = %v, want %v", err, c.want)
			}
			if res := e.Do(ctx, c.req); !errors.Is(res.Err, c.want) {
				t.Fatalf("Do() error = %v, want %v", res.Err, c.want)
			}
		})
	}
}

func TestBudgetOnNonFASTRejected(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	g := schedtest.Chain(4, 1)
	res := e.Do(context.Background(), Request{Graph: g, Algorithm: "etf", Budget: 10 * time.Millisecond})
	if !errors.Is(res.Err, ErrBadBudget) {
		t.Fatalf("budgeted etf error = %v, want ErrBadBudget", res.Err)
	}
	// The FAST family accepts a budget; budgeted runs bypass the cache.
	res = e.Do(context.Background(), Request{Graph: g, Algorithm: "fast", Budget: 5 * time.Millisecond})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.CacheHit || res.Coalesced {
		t.Fatal("budgeted run must bypass the cache")
	}
}

func TestSubmitAfterCloseReturnsErrClosed(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Close()
	if _, err := e.Submit(context.Background(), Request{Graph: schedtest.Chain(2, 0)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestCancelledContextSurfacesTypedError(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.Do(ctx, Request{Graph: schedtest.Chain(5, 1)})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("cancelled request error = %v, want context.Canceled", res.Err)
	}
}

func TestTrySubmitBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Workers: 1, QueueDepth: 1, Metrics: reg})
	defer e.Close()
	g := schedtest.Chain(6, 1)

	// Occupy the single worker with a budgeted anytime search, then
	// fill the single queue slot; the next TrySubmit must shed load.
	busy, err := e.Submit(context.Background(), Request{Graph: g, Algorithm: "fast", Budget: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the worker dequeue the busy job

	var queued <-chan Result
	var full bool
	for i := 0; i < 3; i++ {
		ch, err := e.TrySubmit(context.Background(), Request{ID: fmt.Sprint(i), Graph: g, NoCache: true})
		switch {
		case err == nil:
			queued = ch
		case errors.Is(err, ErrQueueFull):
			full = true
		default:
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("queue never reported full under backpressure")
	}
	if rej := reg.Counter("batch.rejected").Value(); rej == 0 {
		t.Fatal("rejection counter not incremented")
	}
	if r := <-busy; r.Err != nil {
		t.Fatal(r.Err)
	}
	if queued != nil {
		if r := <-queued; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

func TestDeadlinePartialResultKeepsTypedError(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	// A large graph with a deadline far too small to finish the search:
	// the FAST family returns its best-so-far schedule plus
	// context.DeadlineExceeded.
	g := schedtest.RandomLayered(rand.New(rand.NewSource(17)), 2000)
	res := e.Do(context.Background(), Request{Graph: g, Procs: 8, Algorithm: "pfast", Deadline: time.Nanosecond})
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("expired request error = %v, want context.DeadlineExceeded", res.Err)
	}
}

// TestDirBatch200BitIdentical is the acceptance gate: a 200-DAG
// directory scheduled concurrently (cache enabled, with duplicate
// files so the hit path is exercised) must produce per-DAG makespans
// bit-identical to sequential single-DAG runs with the same seeds.
func TestDirBatch200BitIdentical(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	const unique = 150
	graphs := make(map[string]*dag.Graph)
	write := func(name string, g *dag.Graph) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := dag.WriteJSON(f, g, name); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		graphs[name] = g
	}
	for i := 0; i < unique; i++ {
		write(fmt.Sprintf("g%03d.json", i), schedtest.RandomLayered(rng, 4+rng.Intn(30)))
	}
	for i := 0; i < 50; i++ { // duplicates: identical content under new names
		src := graphs[fmt.Sprintf("g%03d.json", i)]
		write(fmt.Sprintf("dup%03d.json", i), src.Clone())
	}

	reg := obs.NewRegistry()
	e := New(Options{Workers: 8, Metrics: reg})
	defer e.Close()
	tmpl := Request{Procs: 4, Algorithm: "fast", Seed: 1}
	results, agg, err := RunDir(context.Background(), e, dir, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Requested != 200 || agg.Succeeded != 200 || agg.Failed != 0 {
		t.Fatalf("aggregate = %+v, want 200/200/0", agg)
	}
	for _, fr := range results {
		if fr.Error != "" {
			t.Fatalf("%s: %s", fr.File, fr.Error)
		}
		// The sequential reference loads the same file: scheduler
		// tie-breaks depend on edge insertion order, so like must be
		// compared with like (see requestKey's doc comment).
		g, err := loadGraph(filepath.Join(dir, fr.File))
		if err != nil {
			t.Fatal(err)
		}
		want := coldSchedule(t, g, "fast", 1, 4)
		if fr.Makespan != want.Length() {
			t.Fatalf("%s: batch makespan %v != sequential %v", fr.File, fr.Makespan, want.Length())
		}
	}
	// The 50 duplicate files must have been served by the cache or a
	// coalesced in-flight leader.
	if agg.CacheHits+agg.Coalesced < 50 {
		t.Fatalf("cache hits %d + coalesced %d < 50 duplicates", agg.CacheHits, agg.Coalesced)
	}
	if e.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain", e.InFlight())
	}
}

func TestRunDirErrors(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	if _, _, err := RunDir(context.Background(), e, t.TempDir(), Request{}); err == nil {
		t.Fatal("empty directory accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	results, agg, err := RunDir(context.Background(), e, dir, Request{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Failed != 1 || results[0].Error == "" {
		t.Fatalf("malformed file not reported: %+v", results)
	}
}

// shardKey builds a resultKey whose first byte pins the shard and
// whose tail disambiguates entries within it.
func shardKey(shard byte, tag byte) resultKey {
	var k resultKey
	k[0] = shard
	k[1] = tag
	return k
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity 2*cacheShards gives every shard room for two entries;
	// three keys pinned to one shard exercise that shard's LRU order.
	c := newCache(2 * cacheShards)
	s := sched.New(1)
	a, b, d := shardKey(7, 'a'), shardKey(7, 'b'), shardKey(7, 'c')
	c.put(a, s)
	c.put(b, s)
	if _, ok := c.get(a); !ok {
		t.Fatal("a evicted early")
	}
	c.put(d, s) // evicts b (a was just touched)
	if _, ok := c.get(b); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get(a); !ok {
		t.Fatal("a lost")
	}
	if _, ok := c.get(d); !ok {
		t.Fatal("c lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestCacheSharding pins the shard selection (first key byte, masked)
// and that pressure in one shard never evicts another shard's entries.
func TestCacheSharding(t *testing.T) {
	c := newCache(cacheShards) // one entry per shard
	s := sched.New(1)
	for i := 0; i < cacheShards; i++ {
		c.put(shardKey(byte(i), 0), s)
	}
	if c.len() != cacheShards {
		t.Fatalf("len = %d, want %d", c.len(), cacheShards)
	}
	// Hammer shard 3 with fresh keys: only shard 3's entry may be
	// displaced.
	for tag := byte(1); tag <= 8; tag++ {
		c.put(shardKey(3, tag), s)
	}
	if c.len() != cacheShards {
		t.Fatalf("len after shard-3 churn = %d, want %d", c.len(), cacheShards)
	}
	for i := 0; i < cacheShards; i++ {
		if i == 3 {
			continue
		}
		if _, ok := c.get(shardKey(byte(i), 0)); !ok {
			t.Fatalf("churn in shard 3 evicted shard %d's entry", i)
		}
	}
	// A key whose first byte exceeds the shard count wraps via the mask.
	k := shardKey(byte(cacheShards)+5, 9)
	c.put(k, s)
	if got, want := c.shard(k), &c.shards[5]; got != want {
		t.Fatalf("shard(0x%02x) picked shard %p, want %p", k[0], got, want)
	}
}

func TestRequestKeySensitivity(t *testing.T) {
	g := schedtest.Chain(4, 2)
	base := Request{Graph: g, Procs: 2, Algorithm: "fast", Seed: 1}
	key := requestKey(base)

	same := base
	same.Graph = g.Clone()
	if requestKey(same) != key {
		t.Fatal("identical content hashed differently")
	}
	unbounded := base
	unbounded.Procs = 0
	unbounded2 := base
	unbounded2.Procs = -5
	if requestKey(unbounded) != requestKey(unbounded2) {
		t.Fatal("all non-positive processor counts must normalize to one key")
	}

	for name, mutate := range map[string]func(r *Request){
		"Seed":  func(r *Request) { r.Seed = 2 },
		"Procs": func(r *Request) { r.Procs = 3 },
		"Algo":  func(r *Request) { r.Algorithm = "etf" },
		"NodeWeight": func(r *Request) {
			c := g.Clone()
			c.SetWeight(0, 99)
			r.Graph = c
		},
		"EdgeWeight": func(r *Request) {
			c := g.Clone()
			c.SetEdgeWeight(0, 1, 99)
			r.Graph = c
		},
	} {
		m := base
		mutate(&m)
		if requestKey(m) == key {
			t.Fatalf("%s change did not change the key", name)
		}
	}
}
