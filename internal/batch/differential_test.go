package batch

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/sched"
	"fastsched/internal/workload"
)

// diffWorkloads are the three graph shapes of the compiled-vs-legacy
// differential: a layered random DAG, a fork-join, and a communication-
// heavy chain. All stay at <= 8 nodes so the exhaustive "opt" scheduler
// remains tractable (matching the metamorphic suite's MaxNodes).
func diffWorkloads(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	layered := dag.New(8)
	var prev []dag.NodeID
	placed := 0
	for placed < 8 {
		width := 1 + rng.Intn(3)
		if placed+width > 8 {
			width = 8 - placed
		}
		layer := make([]dag.NodeID, 0, width)
		for i := 0; i < width; i++ {
			layer = append(layer, layered.AddNode("", 1+float64(rng.Intn(9))))
			placed++
		}
		for _, n := range layer {
			for _, p := range prev {
				if rng.Intn(2) == 0 {
					layered.MustAddEdge(p, n, float64(1+rng.Intn(10)))
				}
			}
		}
		if len(prev) > 0 {
			// Guarantee connectivity layer to layer.
			for _, n := range layer {
				if layered.InDegree(n) == 0 {
					layered.MustAddEdge(prev[0], n, float64(1+rng.Intn(10)))
				}
			}
		}
		prev = layer
	}
	return map[string]*dag.Graph{
		"layered":  layered,
		"forkjoin": workload.ForkJoin(4, 2, 3, 1, 5),
		"chain":    workload.Chain(7, 3, 4),
	}
}

// TestCompiledMatchesLegacy pins the tentpole's bit-identity claim:
// for every registry scheduler, every workload and every seed, the
// compiled-plan serving path produces exactly the schedule the legacy
// (per-request re-analysis) path produces — same placements, same
// floats, not just equal makespans.
func TestCompiledMatchesLegacy(t *testing.T) {
	compiled := New(Options{Workers: 2})
	defer compiled.Close()
	legacy := New(Options{Workers: 2, DisableCompilation: true})
	defer legacy.Close()

	graphs := diffWorkloads(t)
	ctx := context.Background()
	for _, alg := range casch.AlgorithmNames() {
		for wname, g := range graphs {
			for seed := int64(1); seed <= 5; seed++ {
				req := Request{
					ID:        fmt.Sprintf("%s/%s/%d", alg, wname, seed),
					Graph:     g,
					Procs:     2,
					Algorithm: alg,
					Seed:      seed,
					NoCache:   true, // force a real scheduling run each time
				}
				got := compiled.Do(ctx, req)
				want := legacy.Do(ctx, req)
				if (got.Err == nil) != (want.Err == nil) {
					t.Fatalf("%s: compiled err=%v, legacy err=%v", req.ID, got.Err, want.Err)
				}
				if got.Err != nil {
					continue
				}
				assertSameSchedule(t, req.ID, got.Schedule, want.Schedule)
			}
		}
	}
}

// assertSameSchedule requires bit-identical placements.
func assertSameSchedule(t *testing.T, id string, got, want *sched.Schedule) {
	t.Helper()
	if got.Algorithm != want.Algorithm {
		t.Fatalf("%s: algorithm %q vs %q", id, got.Algorithm, want.Algorithm)
	}
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("%s: %d placements vs %d", id, got.NumNodes(), want.NumNodes())
	}
	for i := 0; i < got.NumNodes(); i++ {
		n := dag.NodeID(i)
		gp, wp := got.Of(n), want.Of(n)
		if gp != wp {
			t.Fatalf("%s: node %d placed %+v by compiled path, %+v by legacy", id, n, gp, wp)
		}
	}
	if got.Length() != want.Length() {
		t.Fatalf("%s: makespan %v vs %v", id, got.Length(), want.Length())
	}
}
