// Package mh implements MH (Mapping Heuristic; El-Rewini & Lewis,
// 1990), the classical *topology-aware* list scheduler from the same
// survey family as the other baselines: like ETF it schedules the ready
// node with the earliest start time, but message arrival accounts for
// the interconnect distance between processors (here the Paragon-style
// 2D mesh of package sim). With a zero topology MH degenerates to an
// ETF variant prioritized by static level.
package mh

import (
	"errors"

	"fastsched/internal/dag"
	"fastsched/internal/listsched"
	"fastsched/internal/sched"
	"fastsched/internal/sim"
)

// Scheduler implements sched.Scheduler with the MH algorithm.
type Scheduler struct {
	// Topology is the interconnect model; the zero value is
	// distance-free.
	Topology sim.Mesh
}

// New returns an MH scheduler for the given mesh.
func New(topology sim.Mesh) *Scheduler { return &Scheduler{Topology: topology} }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "MH" }

// Schedule implements sched.Scheduler. procs <= 0 is treated as one
// processor per node.
func (s *Scheduler) Schedule(g *dag.Graph, procs int) (*sched.Schedule, error) {
	v := g.NumNodes()
	if v == 0 {
		return nil, errors.New("mh: empty graph")
	}
	if procs <= 0 {
		procs = v
	}
	l, err := dag.ComputeLevels(g)
	if err != nil {
		return nil, err
	}
	m := listsched.NewMachine(procs)
	out := sched.New(v)
	out.Algorithm = "MH"

	unschedParents := make([]int, v)
	ready := make([]bool, v)
	readyCount := 0
	for i := 0; i < v; i++ {
		unschedParents[i] = g.InDegree(dag.NodeID(i))
		if unschedParents[i] == 0 {
			ready[i] = true
			readyCount++
		}
	}

	// Topology-aware data arrival time.
	dat := func(n dag.NodeID, p int) float64 {
		var t float64
		for _, e := range g.Pred(n) {
			pl := out.Of(e.From)
			arr := pl.Finish
			if pl.Proc != p {
				arr += e.Weight + s.Topology.Delay(pl.Proc, p)
			}
			if arr > t {
				t = arr
			}
		}
		return t
	}

	for scheduled := 0; scheduled < v; scheduled++ {
		if readyCount == 0 {
			return nil, errors.New("mh: no ready node (cyclic graph?)")
		}
		bestNode := dag.None
		bestProc := -1
		bestStart := 0.0
		for i := 0; i < v; i++ {
			if !ready[i] {
				continue
			}
			n := dag.NodeID(i)
			for p := 0; p < procs; p++ {
				st := m.Proc(p).EarliestStartAppend(dat(n, p))
				better := bestNode == dag.None || st < bestStart-1e-12
				if !better && st < bestStart+1e-12 {
					// ties: higher static level, then smaller ID
					if l.Static[n] != l.Static[bestNode] {
						better = l.Static[n] > l.Static[bestNode]
					} else {
						better = n < bestNode
					}
				}
				if better {
					bestNode, bestProc, bestStart = n, p, st
				}
			}
		}
		w := g.Weight(bestNode)
		m.Proc(bestProc).Insert(bestNode, bestStart, w)
		out.Place(bestNode, bestProc, bestStart, bestStart+w)
		ready[bestNode] = false
		readyCount--
		for _, e := range g.Succ(bestNode) {
			unschedParents[e.To]--
			if unschedParents[e.To] == 0 {
				ready[e.To] = true
				readyCount++
			}
		}
	}
	return out, nil
}
