package mh

import (
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/etf"
	"fastsched/internal/example"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
	"fastsched/internal/sim"
)

func TestConformance(t *testing.T) {
	schedtest.Conformance(t, New(sim.Mesh{}), true)
}

func TestName(t *testing.T) {
	if New(sim.Mesh{}).Name() != "MH" {
		t.Fatal("name")
	}
}

func TestExampleGraphValid(t *testing.T) {
	g := example.Graph()
	for _, mesh := range []sim.Mesh{{}, {Cols: 2, PerHop: 3}} {
		s, err := New(mesh).Schedule(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(g, s); err != nil {
			t.Fatal(err)
		}
	}
}

// MH's defining property: its schedule already budgets for hop latency,
// so its predicted start times hold up under topology-aware execution,
// and on hop-dominated machines it does not lose to the topology-blind
// ETF.
func TestTopologyAwareExecution(t *testing.T) {
	mesh := sim.Mesh{Cols: 4, PerHop: 12}
	cfg := sim.Config{Topology: mesh}
	rng := rand.New(rand.NewSource(7))
	mhWins := 0
	trials := 12
	for trial := 0; trial < trials; trial++ {
		g := schedtest.RandomLayered(rng, 20+rng.Intn(40))
		procs := 8

		mhS, err := New(mesh).Schedule(g, procs)
		if err != nil {
			t.Fatal(err)
		}
		mhExec, err := sim.Run(g, mhS, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// MH's schedule accounts for every hop, so execution can never
		// be later than its own prediction.
		if mhExec.Time > mhS.Length()+1e-9 {
			t.Fatalf("trial %d: MH execution %v exceeds its prediction %v", trial, mhExec.Time, mhS.Length())
		}

		etfS, err := etf.New().Schedule(g, procs)
		if err != nil {
			t.Fatal(err)
		}
		etfExec, err := sim.Run(g, etfS, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if mhExec.Time <= etfExec.Time+1e-9 {
			mhWins++
		}
	}
	if mhWins < trials/2 {
		t.Fatalf("MH beat/tied blind ETF on only %d/%d hop-dominated instances", mhWins, trials)
	}
}

// With a huge per-hop cost MH keeps communicating tasks on nearby
// processors.
func TestPrefersNearbyProcessors(t *testing.T) {
	mesh := sim.Mesh{Cols: 4, PerHop: 50}
	g := dag.New(2)
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	g.MustAddEdge(a, b, 1)
	s, err := New(mesh).Schedule(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proc(a) != s.Proc(b) {
		t.Fatalf("b placed %d hops away", int(mesh.Delay(s.Proc(a), s.Proc(b))/50))
	}
}
