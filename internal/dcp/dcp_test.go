package dcp

import (
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/example"
	"fastsched/internal/fast"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
)

func TestConformance(t *testing.T) {
	schedtest.Conformance(t, New(), true)
}

func TestName(t *testing.T) {
	if New().Name() != "DCP" {
		t.Fatal("name")
	}
}

func TestExampleGraphQuality(t *testing.T) {
	g := example.Graph()
	s, err := New().Schedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, s); err != nil {
		t.Fatal(err)
	}
	// DCP is the quality-oriented algorithm of the same authors: it must
	// land within the band the other algorithms produce on the example
	// graph (18..23 across FAST/DSC/ETF/DLS/MD).
	if s.Length() > 23 {
		t.Fatalf("DCP length %v worse than MD's 23", s.Length())
	}
}

// The zero-mobility chain stays on one processor at zero cost.
func TestChainTight(t *testing.T) {
	g := schedtest.Chain(7, 9)
	s, err := New().Schedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcsUsed() != 1 || s.Length() != 7 {
		t.Fatalf("chain: %d procs, length %v", s.ProcsUsed(), s.Length())
	}
}

// The lookahead keeps a hot parent-child pair together: with one heavy
// child and an expensive edge, parent and critical child co-locate.
func TestLookaheadCoLocatesCriticalChild(t *testing.T) {
	g := dag.New(3)
	a := g.AddNode("a", 2)
	b := g.AddNode("b", 6) // critical child, expensive message
	c := g.AddNode("c", 1)
	g.MustAddEdge(a, b, 50)
	g.MustAddEdge(a, c, 1)
	s, err := New().Schedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proc(a) != s.Proc(b) {
		t.Fatal("critical child not co-located despite 50-unit message")
	}
	if err := sched.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

// DCP spends O(v^3); on random graphs it should at least keep pace with
// FAST's median quality. Assert it stays within 25% of FAST across a
// seeded sample (a loose band: both are heuristics).
func TestQualityBandVsFAST(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	worseCount := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		g := schedtest.RandomLayered(rng, 20+rng.Intn(50))
		d, err := New().Schedule(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(g, d); err != nil {
			t.Fatal(err)
		}
		f, err := fast.Default().Schedule(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		if d.Length() > 1.25*f.Length() {
			worseCount++
		}
	}
	if worseCount > trials/2 {
		t.Fatalf("DCP worse than 1.25x FAST on %d/%d graphs — implementation suspect", worseCount, trials)
	}
}
