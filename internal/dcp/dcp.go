// Package dcp implements DCP (Dynamic Critical Path scheduling; Kwok &
// Ahmad, IEEE TPDS 1996) — the FAST authors' own higher-effort
// algorithm from the same year, included here as the natural
// quality-oriented counterpart in the comparison suite.
//
// DCP tracks the critical path of the *partially scheduled* graph: at
// every step it recomputes the absolute earliest and latest start times
// (AEST/ALST, with communication zeroed between co-located tasks and
// scheduled tasks pinned at their start times), selects the ready node
// with the least mobility (ALST − AEST), and places it with insertion
// on the candidate processor that minimizes a one-step lookahead — the
// node's start time plus the estimated start time of its critical
// child on the same processor. DCP assumes an unbounded processor set;
// per-step recomputation makes it O(v^3) like MD.
package dcp

import (
	"errors"
	"math"

	"fastsched/internal/dag"
	"fastsched/internal/listsched"
	"fastsched/internal/sched"
)

// Scheduler implements sched.Scheduler with the DCP algorithm.
type Scheduler struct{}

// New returns a DCP scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "DCP" }

// Schedule implements sched.Scheduler. DCP is defined for an unbounded
// processor set; positive procs caps the machine like MD's bounded
// fallback, procs <= 0 gives the published behaviour.
func (*Scheduler) Schedule(g *dag.Graph, procs int) (*sched.Schedule, error) {
	v := g.NumNodes()
	if v == 0 {
		return nil, errors.New("dcp: empty graph")
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	m := listsched.NewMachine(procs)
	s := sched.New(v)
	s.Algorithm = "DCP"

	assigned := make([]bool, v)
	unschedParents := make([]int, v)
	for i := 0; i < v; i++ {
		unschedParents[i] = g.InDegree(dag.NodeID(i))
	}
	aest := make([]float64, v)
	alst := make([]float64, v) // stored as b-level first, then CP - b

	for scheduled := 0; scheduled < v; scheduled++ {
		cp := recompute(g, s, assigned, order, aest, alst)

		// Ready node with the smallest mobility; ties to smaller ALST
		// (earlier on the dynamic critical path), then smaller ID.
		best := dag.None
		bestMob, bestALST := math.Inf(1), math.Inf(1)
		for i := 0; i < v; i++ {
			n := dag.NodeID(i)
			if assigned[i] || unschedParents[i] > 0 {
				continue
			}
			mob := alst[n] - aest[n]
			if mob < bestMob-1e-9 || (mob < bestMob+1e-9 && alst[n] < bestALST-1e-9) {
				best, bestMob, bestALST = n, mob, alst[n]
			}
		}
		if best == dag.None {
			return nil, errors.New("dcp: no ready node (cyclic graph?)")
		}

		// Critical child: the unscheduled child with the least mobility
		// (the one whose start DCP's lookahead protects).
		cc := dag.None
		ccMob := math.Inf(1)
		for _, e := range g.Succ(best) {
			if assigned[e.To] {
				continue
			}
			if mob := alst[e.To] - aest[e.To]; mob < ccMob-1e-9 {
				cc, ccMob = e.To, mob
			}
		}

		w := g.Weight(best)
		// Candidate processors: those holding parents of best, plus one
		// empty processor (if available).
		cands := map[int]bool{}
		for _, e := range g.Pred(best) {
			cands[s.Proc(e.From)] = true
		}
		if f := m.FreshProc(); f >= 0 {
			cands[f] = true
		}
		if len(cands) == 0 {
			for p := 0; p < m.NumProcs(); p++ {
				cands[p] = true
			}
		}
		proc, start, score := -1, 0.0, math.Inf(1)
		for p := 0; p < m.NumProcs(); p++ {
			if !cands[p] {
				continue
			}
			st := m.Proc(p).EarliestStart(listsched.DAT(g, s, best, p), w)
			sc := st
			if cc != dag.None {
				sc += ccStart(g, s, assigned, aest, cc, p, best, st+w)
			}
			if sc < score-1e-9 || (sc < score+1e-9 && (proc == -1 || p < proc)) {
				proc, start, score = p, st, sc
			}
		}
		m.Proc(proc).Insert(best, start, w)
		s.Place(best, proc, start, start+w)
		assigned[best] = true
		for _, e := range g.Succ(best) {
			unschedParents[e.To]--
		}
		_ = cp
	}
	return s, nil
}

// ccStart estimates the critical child's start time if it were placed
// on processor p, given that parent `placed` finishes there at
// placedFinish: scheduled parents contribute real arrival times,
// unscheduled ones their AEST-based estimates.
func ccStart(g *dag.Graph, s *sched.Schedule, assigned []bool, aest []float64,
	cc dag.NodeID, p int, placed dag.NodeID, placedFinish float64) float64 {
	est := 0.0
	for _, e := range g.Pred(cc) {
		var arr float64
		switch {
		case e.From == placed:
			arr = placedFinish // co-located with the child: comm zeroed
		case assigned[e.From]:
			pl := s.Of(e.From)
			arr = pl.Finish
			if pl.Proc != p {
				arr += e.Weight
			}
		default:
			// Unscheduled parent: assume it keeps its estimated start and
			// pays full communication.
			arr = aest[e.From] + g.Weight(e.From) + e.Weight
		}
		if arr > est {
			est = arr
		}
	}
	return est
}

// recompute fills aest/alst on the partially scheduled graph and
// returns its critical-path length, mirroring MD's level recomputation.
func recompute(g *dag.Graph, s *sched.Schedule, assigned []bool, order []dag.NodeID, aest, alst []float64) float64 {
	commCost := func(e dag.Edge) float64 {
		if assigned[e.From] && assigned[e.To] && s.Proc(e.From) == s.Proc(e.To) {
			return 0
		}
		return e.Weight
	}
	for _, n := range order {
		if assigned[n] {
			aest[n] = s.Start(n)
			continue
		}
		t := 0.0
		for _, e := range g.Pred(n) {
			if cand := aest[e.From] + g.Weight(e.From) + commCost(e); cand > t {
				t = cand
			}
		}
		aest[n] = t
	}
	// alst holds b-levels during the backward pass.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		b := 0.0
		for _, e := range g.Succ(n) {
			if cand := commCost(e) + alst[e.To]; cand > b {
				b = cand
			}
		}
		alst[n] = g.Weight(n) + b
	}
	cp := 0.0
	for _, n := range order {
		if sum := aest[n] + alst[n]; sum > cp {
			cp = sum
		}
	}
	for _, n := range order {
		alst[n] = cp - alst[n]
	}
	return cp
}
