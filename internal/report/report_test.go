package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSmallReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Small()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Figure 1 — example DAG attributes",
		"Figures 2–4",
		"<svg",
		"Figure 5 — Gaussian elimination",
		"Figure 8 — random DAGs",
		"Search telemetry",
		"fast.search.steps_tried",
		"listsched.ready_list_len",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Extended comparison") {
		t.Error("small report should skip the extended study")
	}
}

func TestOptionsPresets(t *testing.T) {
	f := Full()
	if len(f.GaussDims) != 4 || !f.Extended || f.RandomProcs != 256 {
		t.Fatalf("Full() = %+v", f)
	}
	s := Small()
	if len(s.RandomSizes) != 1 || s.Extended {
		t.Fatalf("Small() = %+v", s)
	}
}

func TestProgressHelper(t *testing.T) {
	var buf bytes.Buffer
	Progress(&buf, "at %d%%", 50)
	if buf.String() != "at 50%" {
		t.Fatalf("progress = %q", buf.String())
	}
}

func TestWriteReportWithExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extended report is slow")
	}
	opts := Small()
	opts.Extended = true
	var buf bytes.Buffer
	if err := Write(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Extended comparison", "CCR sensitivity"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteReportSkipsEmptySections(t *testing.T) {
	opts := Options{} // everything empty/off
	var buf bytes.Buffer
	if err := Write(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Figure 5") || strings.Contains(out, "Figure 8") {
		t.Errorf("empty options rendered studies:\n%.200s", out)
	}
	if strings.Contains(out, "Search telemetry") {
		t.Error("empty options rendered the telemetry section")
	}
	if !strings.Contains(out, "Figure 1") {
		t.Error("Figure 1 should always render")
	}
}
