package report

import (
	"fmt"
	"strings"
	"time"

	"fastsched/internal/batch"
)

// BatchText renders a directory batch run's aggregate as the plain-text
// report fastsched's batch mode prints after the JSONL stream — the
// same fixed-width style as the schedule tables.
func BatchText(agg batch.Aggregate, workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch: %d graphs, %d workers\n", agg.Requested, workers)
	fmt.Fprintf(&b, "  succeeded     %d\n", agg.Succeeded)
	fmt.Fprintf(&b, "  failed        %d\n", agg.Failed)
	fmt.Fprintf(&b, "  cache hits    %d\n", agg.CacheHits)
	fmt.Fprintf(&b, "  coalesced     %d\n", agg.Coalesced)
	fmt.Fprintf(&b, "  wall time     %v\n", agg.Wall.Round(time.Microsecond))
	fmt.Fprintf(&b, "  throughput    %.1f graphs/s\n", agg.Throughput())
	fmt.Fprintf(&b, "  mean latency  %v\n", agg.MeanLatency())
	if agg.Succeeded > 0 {
		fmt.Fprintf(&b, "  mean makespan %.6g\n", agg.MakespanSum/float64(agg.Succeeded))
		fmt.Fprintf(&b, "  max makespan  %.6g\n", agg.MakespanMax)
	}
	return b.String()
}
