package report

import (
	"fmt"
	"strings"

	"fastsched/internal/online"
)

// OnlineText renders an online run's aggregate as the plain-text
// report fastsched's online mode prints after the JSONL trace — the
// same fixed-width style as the batch report.
func OnlineText(rep *online.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "online: %d jobs, %d processors, policy %s (delegate %s)\n",
		rep.Jobs, rep.Procs, rep.Policy, rep.Algorithm)
	fmt.Fprintf(&b, "  completed      %d\n", rep.Completed)
	fmt.Fprintf(&b, "  missed         %d\n", rep.Missed)
	fmt.Fprintf(&b, "  makespan       %.6g\n", rep.Makespan)
	fmt.Fprintf(&b, "  mean response  %.6g\n", rep.MeanResp)
	fmt.Fprintf(&b, "  max response   %.6g\n", rep.MaxResp)
	fmt.Fprintf(&b, "  total tardy    %.6g\n", rep.TotalTard)
	fmt.Fprintf(&b, "  max tardy      %.6g\n", rep.MaxTard)
	fmt.Fprintf(&b, "  solo plans     %d\n", rep.SoloPlans)
	if rep.Crashes > 0 {
		fmt.Fprintf(&b, "  crashes        %d\n", rep.Crashes)
		fmt.Fprintf(&b, "  replans        %d\n", rep.Replans)
		fmt.Fprintf(&b, "  aborted tasks  %d\n", rep.Aborted)
	}
	fmt.Fprintf(&b, "  fairness       %.4f\n", rep.Fairness)
	for _, ts := range rep.Tenants {
		name := ts.Tenant
		if name == "" {
			name = "(default)"
		}
		fmt.Fprintf(&b, "  tenant %-10s %d jobs, %d missed, service %.6g\n",
			name, ts.Jobs, ts.Missed, ts.Service)
	}
	return b.String()
}
