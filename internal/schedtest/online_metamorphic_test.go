package schedtest_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/online"
	"fastsched/internal/schedtest"
	"fastsched/internal/sim"
)

// intJobs builds a workload whose every time quantity is an integer —
// node weights, edge weights, arrivals, deadlines. All engine
// arithmetic (EFT maxima, communication sums, policy laxities) then
// stays exactly representable, so the metamorphic equalities below
// hold bit-for-bit rather than within a tolerance.
func intJobs(seed int64, n int) []online.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]online.Job, n)
	for i := range jobs {
		g := schedtest.RandomLayered(rng, 18+rng.Intn(18))
		jobs[i] = online.Job{
			ID:      "j" + string(rune('a'+i)),
			Tenant:  "t" + string(rune('0'+i%2)),
			Graph:   g,
			Arrival: float64(7 * i),
		}
		if i%2 == 0 {
			jobs[i].Deadline = jobs[i].Arrival + float64(40+10*i)
		}
	}
	return jobs
}

func shiftJobs(jobs []online.Job, c float64) []online.Job {
	out := append([]online.Job(nil), jobs...)
	for i := range out {
		out[i].Arrival += c
		if out[i].Deadline > 0 {
			out[i].Deadline += c
		}
	}
	return out
}

// TestOnlineArrivalShift: shifting every arrival (and deadline, and
// crash time) by a constant shifts every completion by exactly that
// constant, for every policy, with and without a mid-stream crash.
func TestOnlineArrivalShift(t *testing.T) {
	const c = 17
	jobs := intJobs(101, 5)
	faultsFor := func(shift float64) *sim.FaultPlan {
		return &sim.FaultPlan{Crashes: []sim.Crash{{Proc: 2, Time: 40 + shift}}}
	}
	for _, policy := range online.PolicyNames() {
		for _, crashed := range []bool{false, true} {
			opts := online.Options{Procs: 4, Policy: policy, Seed: 9}
			if crashed {
				opts.Faults = faultsFor(0)
			}
			base, err := online.Run(jobs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if crashed {
				opts.Faults = faultsFor(c)
			}
			shifted, err := online.Run(shiftJobs(jobs, c), opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range jobs {
				b, s := base.Results[i], shifted.Results[i]
				if s.Finish != b.Finish+c || s.Start != b.Start+c {
					t.Fatalf("%s crash=%v job %s: shifted [%v,%v], base [%v,%v] + %d",
						policy, crashed, b.ID, s.Start, s.Finish, b.Start, b.Finish, c)
				}
				if s.Missed != b.Missed || s.Tardiness != b.Tardiness {
					t.Fatalf("%s crash=%v job %s: miss accounting changed under shift", policy, crashed, b.ID)
				}
			}
		}
	}
}

// TestOnlineDeadlineScaling: loosening deadlines never increases the
// miss count. Additive loosening preserves every policy's ordering
// exactly (so the schedule is unchanged and misses are monotone);
// multiplicative scaling preserves the deadline order, which pins fifo
// and edf but not the laxity hybrid.
func TestOnlineDeadlineScaling(t *testing.T) {
	jobs := intJobs(77, 6)
	scale := func(mul, add float64) []online.Job {
		out := append([]online.Job(nil), jobs...)
		for i := range out {
			if out[i].Deadline > 0 {
				out[i].Deadline = out[i].Deadline*mul + add
			}
		}
		return out
	}
	run := func(js []online.Job, policy string) *online.Report {
		rep, err := online.Run(js, online.Options{Procs: 3, Policy: policy, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, policy := range online.PolicyNames() {
		base := run(jobs, policy)
		loose := run(scale(1, 30), policy)
		if loose.Missed > base.Missed {
			t.Fatalf("%s: +30 deadline slack raised misses %d -> %d", policy, base.Missed, loose.Missed)
		}
		for i := range jobs {
			if loose.Results[i].Finish != base.Results[i].Finish {
				t.Fatalf("%s: additive deadline slack changed job %s finish %v -> %v",
					policy, jobs[i].ID, base.Results[i].Finish, loose.Results[i].Finish)
			}
			if loose.Results[i].Missed && !base.Results[i].Missed {
				t.Fatalf("%s: job %s started missing with a looser deadline", policy, jobs[i].ID)
			}
		}
	}
	for _, policy := range []string{"fifo", "edf"} {
		base := run(jobs, policy)
		doubled := run(scale(2, 0), policy)
		if doubled.Missed > base.Missed {
			t.Fatalf("%s: doubling deadlines raised misses %d -> %d", policy, base.Missed, doubled.Missed)
		}
	}
}

// TestOnlineGOMAXPROCSIdentical: an empty-FaultPlan run is
// bit-identical in its JSONL trace across repeated runs and
// GOMAXPROCS settings, for both the serial and the parallel-search
// delegate.
func TestOnlineGOMAXPROCSIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, algo := range []string{"fast", "pfast"} {
		for _, seed := range []int64{1, 2, 3} {
			jobs := intJobs(seed*13, 4)
			trace := func() []byte {
				rep, err := online.Run(jobs, online.Options{
					Procs:     4,
					Policy:    "fast",
					Algorithm: algo,
					Seed:      seed,
					Faults:    &sim.FaultPlan{},
				})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := online.WriteJSONL(&buf, rep); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			var want []byte
			for _, gmp := range []int{1, 4, 1} {
				runtime.GOMAXPROCS(gmp)
				for rep := 0; rep < 2; rep++ {
					got := trace()
					if want == nil {
						want = got
						continue
					}
					if !bytes.Equal(want, got) {
						t.Fatalf("%s seed %d: trace differs at GOMAXPROCS=%d rep %d", algo, seed, gmp, rep)
					}
				}
			}
		}
	}
}

// TestOnlineJobsUntouched: the engine treats submitted graphs as
// read-only; a run must not mutate them (guarding the replay-based
// metamorphic tests above).
func TestOnlineJobsUntouched(t *testing.T) {
	jobs := intJobs(3, 3)
	type nodeState struct {
		w     float64
		succs int
	}
	snapshot := func() [][]nodeState {
		var snap [][]nodeState
		for _, j := range jobs {
			var ns []nodeState
			for i := 0; i < j.Graph.NumNodes(); i++ {
				ns = append(ns, nodeState{j.Graph.Weight(dag.NodeID(i)), len(j.Graph.Succ(dag.NodeID(i)))})
			}
			snap = append(snap, ns)
		}
		return snap
	}
	before := snapshot()
	if _, err := online.Run(jobs, online.Options{
		Procs:  3,
		Faults: &sim.FaultPlan{Crashes: []sim.Crash{{Proc: 0, Time: 25}}},
	}); err != nil {
		t.Fatal(err)
	}
	after := snapshot()
	for j := range before {
		for i := range before[j] {
			if before[j][i] != after[j][i] {
				t.Fatalf("job %d node %d mutated: %+v -> %+v", j, i, before[j][i], after[j][i])
			}
		}
	}
}
