// The wide optimality-boxing suite: every registered algorithm is
// boxed against the exact branch-and-bound solver on the pinned
// v ≈ 20–25 oracle corpus (OracleCorpus) — ten times the instance size
// the old v <= 8 oracle suite could afford, reachable because the
// rebuilt solver proves these optima in tens of milliseconds. Like the
// other oracle tests this lives in the external package so it can
// import casch and optimal.
package schedtest_test

import (
	"testing"

	"fastsched/internal/bounds"
	"fastsched/internal/casch"
	"fastsched/internal/optimal"
	"fastsched/internal/schedtest"
)

// corpusOptima pins the proven optimal makespans of the oracle corpus,
// and corpusHeuristics pins FAST, FAST-hier and PFAST (seed 1) on the
// same instances — the 3-family × 5-instance gap table from
// EXPERIMENTS.md. Pinned exact values, not inequalities: a solver
// "improvement" that shifts an optimum, or a heuristic change that
// moves a makespan, is a behaviour change that must be reviewed.
var corpusOptima = map[string]float64{
	"layered/v25/seed1": 66,
	"layered/v25/seed2": 59,
	"layered/v25/seed3": 50,
	"layered/v25/seed4": 61,
	"layered/v25/seed7": 67,
	"forkjoin/w18c3":    16,
	"forkjoin/w18c6":    20,
	"forkjoin/w20c5":    20,
	"forkjoin/w23c3":    18,
	"forkjoin/w23c7":    24,
	"random/v22/seed1":  56,
	"random/v22/seed4":  56,
	"random/v22/seed6":  65,
	"random/v22/seed7":  53,
	"random/v22/seed8":  59,
}

var corpusHeuristics = map[string][3]float64{ // fast, fast-hier, pfast
	"layered/v25/seed1": {68, 99, 67},
	"layered/v25/seed2": {74, 74, 74},
	"layered/v25/seed3": {66, 53, 62},
	"layered/v25/seed4": {77, 74, 74},
	"layered/v25/seed7": {72, 85, 67},
	"forkjoin/w18c3":    {32, 16, 32},
	"forkjoin/w18c6":    {32, 22, 32},
	"forkjoin/w20c5":    {36, 22, 36},
	"forkjoin/w23c3":    {42, 20, 42},
	"forkjoin/w23c7":    {42, 26, 42},
	"random/v22/seed1":  {59, 62, 59},
	"random/v22/seed4":  {66, 66, 60},
	"random/v22/seed6":  {66, 68, 66},
	"random/v22/seed7":  {56, 56, 56},
	"random/v22/seed8":  {64, 68, 64},
}

// TestOracleCorpusBoxing proves every corpus optimum, checks it against
// the pinned value, and then boxes all registered algorithms:
// procs-respecting algorithms must land at or above the bounded
// optimum; the unbounded clustering family (which ignores the procs
// argument) must land at or above the processor-independent comm-aware
// lower bound, since its machine can be arbitrarily wide. Everything
// stays under the TotalWork + TotalComm envelope (see TestOracleBounds
// for why the serial sum is NOT a valid upper bound).
func TestOracleCorpusBoxing(t *testing.T) {
	for _, inst := range schedtest.OracleCorpus() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			opt, rep, err := optimal.New().Solve(inst.Graph, inst.Procs)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Proven {
				t.Fatalf("optimality not proven (%d expansions)", rep.Expansions)
			}
			if want := corpusOptima[inst.Name]; opt.Length() != want {
				t.Fatalf("proven optimum %v, pinned %v — review before repinning", opt.Length(), want)
			}
			br, err := bounds.Compute(inst.Graph, 0)
			if err != nil {
				t.Fatal(err)
			}
			if br.CommAware > opt.Length()+1e-9 {
				t.Fatalf("comm-aware bound %v exceeds the proven optimum %v", br.CommAware, opt.Length())
			}
			envelope := inst.Graph.TotalWork() + inst.Graph.TotalComm()
			for _, name := range casch.AlgorithmNames() {
				if name == "opt" {
					continue // the oracle itself
				}
				s, err := casch.NewScheduler(name, 1)
				if err != nil {
					t.Fatal(err)
				}
				out, err := s.Schedule(inst.Graph, inst.Procs)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got := out.Length()
				lower := opt.Length()
				if casch.Unbounded(s.Name()) {
					lower = br.CommAware
				}
				if got < lower-1e-9 {
					t.Errorf("%s: makespan %v beats its lower bound %v (unsound solver or bound)",
						name, got, lower)
				}
				if got > envelope+1e-9 {
					t.Errorf("%s: makespan %v exceeds the work+comm envelope %v", name, got, envelope)
				}
			}
		})
	}
}

// TestHeuristicGapPinned pins FAST, FAST-hier and PFAST against the
// corpus optima — the repository's standing answer to "how far from
// optimal are the heuristics at v ≈ 20–25?". The suboptimality is
// real and expected (FAST's transfer neighbourhood plateaus; see the
// Figure-1 pin); what this test forbids is silent drift in either
// direction.
func TestHeuristicGapPinned(t *testing.T) {
	algos := []string{"fast", "fast-hier", "pfast"}
	suboptimal := map[string]bool{} // family -> a strict fast-vs-opt gap seen
	for _, inst := range schedtest.OracleCorpus() {
		want := corpusHeuristics[inst.Name]
		for ai, name := range algos {
			s, err := casch.NewScheduler(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			out, err := s.Schedule(inst.Graph, inst.Procs)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, inst.Name, err)
			}
			if out.Length() != want[ai] {
				t.Errorf("%s on %s: makespan %v, pinned %v — review before repinning",
					name, inst.Name, out.Length(), want[ai])
			}
		}
		if want[0] > corpusOptima[inst.Name] {
			suboptimal[inst.Family] = true
		}
	}
	// Every family must keep at least one instance where the flagship
	// heuristic is strictly suboptimal — the corpus exists to measure
	// gaps, and a regeneration that loses them would hollow it out.
	for _, fam := range []string{"layered", "forkjoin", "random"} {
		if !suboptimal[fam] {
			t.Errorf("family %s has no instance with FAST strictly above the optimum", fam)
		}
	}
}
