package schedtest_test

import (
	"context"
	"math/rand"
	"testing"

	"fastsched/internal/batch"
	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/online"
	"fastsched/internal/schedtest"
)

// unboundedName marks the clustering algorithms that may legitimately
// use more processors than the online machine has; for those the solo
// delegation falls back to dynamic dispatch and the makespans need not
// match. Every other registry algorithm MUST be delegated and match
// the offline batch path exactly.
var unboundedName = map[string]bool{
	"dsc": true, "md": true, "lc": true, "ez": true, "dcp": true,
}

// TestOnlineDifferentialOracle: a single DAG arriving at t = 0 with no
// deadline through the online engine produces the same makespan as the
// offline batch path, for every registry algorithm the solo policy
// delegates to — the online engine's whole-DAG path IS the batch
// compiled dispatch, shifted by zero.
func TestOnlineDifferentialOracle(t *testing.T) {
	g := schedtest.RandomLayered(rand.New(rand.NewSource(31)), 16)
	const procs, seed = 4, 7

	eng := batch.New(batch.Options{})
	defer eng.Close()

	for _, name := range casch.AlgorithmNames() {
		t.Run(name, func(t *testing.T) {
			off := eng.Do(context.Background(), batch.Request{
				Graph:     g,
				Procs:     procs,
				Algorithm: name,
				Seed:      seed,
			})
			if off.Err != nil {
				t.Fatalf("offline batch: %v", off.Err)
			}
			rep, err := online.Run(
				[]online.Job{{ID: "solo", Graph: g}},
				online.Options{Procs: procs, Algorithm: name, Seed: seed},
			)
			if err != nil {
				t.Fatalf("online: %v", err)
			}
			r := rep.Results[0]
			if !r.Solo {
				if !unboundedName[name] {
					t.Fatalf("bounded algorithm %s was not delegated", name)
				}
				if off.ProcsUsed <= procs {
					t.Fatalf("%s fit the machine (%d PEs) yet was not delegated", name, off.ProcsUsed)
				}
				return
			}
			if r.Finish != off.Makespan {
				t.Fatalf("online makespan %v != offline %v", r.Finish, off.Makespan)
			}
			if rep.Makespan != off.Makespan {
				t.Fatalf("report makespan %v != offline %v", rep.Makespan, off.Makespan)
			}
		})
	}
}

// TestOnlineOracleAcrossGraphs widens the t=0 differential to the
// shared corpus for the default delegate.
func TestOnlineOracleAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	graphs := map[string]*dag.Graph{
		"chain":    schedtest.Chain(12, 3),
		"forkjoin": schedtest.ForkJoin(9, 2),
		"random":   schedtest.RandomLayered(rng, 45),
		"tiefree":  schedtest.TieFreeRandom(rng, 30),
	}
	eng := batch.New(batch.Options{})
	defer eng.Close()
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			off := eng.Do(context.Background(), batch.Request{Graph: g, Procs: 4, Algorithm: "fast", Seed: 3})
			if off.Err != nil {
				t.Fatal(off.Err)
			}
			rep, err := online.Run([]online.Job{{ID: "solo", Graph: g}},
				online.Options{Procs: 4, Algorithm: "fast", Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Results[0].Solo || rep.Results[0].Finish != off.Makespan {
				t.Fatalf("solo=%v online %v vs offline %v", rep.Results[0].Solo, rep.Results[0].Finish, off.Makespan)
			}
		})
	}
}
