package schedtest_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/online"
	"fastsched/internal/sched"
	"fastsched/internal/schedtest"
	"fastsched/internal/sim"
	"fastsched/internal/workload"
)

// TestOnlineCrashMatrix is the PR's crash acceptance matrix: 3 arrival
// patterns × 5 seeds × losing 1 of 8 PEs mid-stream. Every run must
// finish every job (nothing silently dropped), every realized schedule
// must pass duration-aware validation, nothing may run on the dead
// processor past the crash, and the miss accounting must agree with
// the per-job JSONL trace.
func TestOnlineCrashMatrix(t *testing.T) {
	const procs, njobs = 8, 6
	patterns := []string{"poisson", "bursty", "all-at-once"}
	for _, pattern := range patterns {
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(pattern+"/"+string(rune('0'+seed)), func(t *testing.T) {
				arrivals := make([]float64, njobs)
				if pattern != "all-at-once" {
					var err error
					arrivals, err = workload.Arrivals(workload.ArrivalOpts{
						N: njobs, Process: pattern, Rate: 0.04, Seed: seed,
					})
					if err != nil {
						t.Fatal(err)
					}
				}
				rng := rand.New(rand.NewSource(seed * 997))
				jobs := make([]online.Job, njobs)
				for i := range jobs {
					jobs[i] = online.Job{
						ID:      "job" + string(rune('A'+i)),
						Tenant:  "t" + string(rune('0'+i%3)),
						Graph:   schedtest.RandomLayered(rng, 20+rng.Intn(20)),
						Arrival: arrivals[i],
					}
					if i%2 == 1 {
						jobs[i].Deadline = arrivals[i] + 60 + float64(rng.Intn(120))
					}
				}
				opts := online.Options{
					Procs:  procs,
					Policy: online.PolicyNames()[int(seed)%3],
					Seed:   seed,
				}
				base, err := online.Run(jobs, opts)
				if err != nil {
					t.Fatalf("fault-free baseline: %v", err)
				}

				deadProc := int(seed) % procs
				crashT := 0.4 * base.Makespan
				opts.Faults = &sim.FaultPlan{Crashes: []sim.Crash{{Proc: deadProc, Time: crashT}}}
				rep, err := online.Run(jobs, opts)
				if err != nil {
					t.Fatalf("crash run: %v", err)
				}
				if rep.Crashes != 1 {
					t.Fatalf("crashes=%d", rep.Crashes)
				}
				if len(rep.Results) != njobs {
					t.Fatalf("submitted %d jobs, traced %d", njobs, len(rep.Results))
				}
				missed := 0
				for i, r := range rep.Results {
					if !r.Completed || r.Schedule == nil {
						t.Fatalf("job %s silently dropped", r.ID)
					}
					if err := sched.ValidateDurations(jobs[i].Graph, r.Schedule, nil); err != nil {
						t.Fatalf("job %s: %v", r.ID, err)
					}
					for n := 0; n < jobs[i].Graph.NumNodes(); n++ {
						pl := r.Schedule.Of(dag.NodeID(n))
						if pl.Proc == deadProc && pl.Finish > crashT+1e-9 {
							t.Fatalf("job %s node %d on PE %d finishes %v after the crash at %v",
								r.ID, n, deadProc, pl.Finish, crashT)
						}
					}
					if r.Missed {
						missed++
					}
				}
				if missed != rep.Missed {
					t.Fatalf("results carry %d misses, report says %d", missed, rep.Missed)
				}

				// The JSONL trace must tell the same story.
				var buf bytes.Buffer
				if err := online.WriteJSONL(&buf, rep); err != nil {
					t.Fatal(err)
				}
				lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
				if len(lines) != njobs+1 {
					t.Fatalf("trace has %d lines, want %d", len(lines), njobs+1)
				}
				traceMissed := 0
				seen := map[string]bool{}
				for _, line := range lines[:njobs] {
					var rec struct {
						Job       string `json:"job"`
						Completed bool   `json:"completed"`
						Missed    bool   `json:"missed"`
					}
					if err := json.Unmarshal(line, &rec); err != nil {
						t.Fatalf("trace line: %v", err)
					}
					if !rec.Completed {
						t.Fatalf("trace marks %s uncompleted", rec.Job)
					}
					seen[rec.Job] = true
					if rec.Missed {
						traceMissed++
					}
				}
				for _, j := range jobs {
					if !seen[j.ID] {
						t.Fatalf("job %s missing from the trace", j.ID)
					}
				}
				var tail struct {
					Report *online.Report `json:"report"`
				}
				if err := json.Unmarshal(lines[njobs], &tail); err != nil || tail.Report == nil {
					t.Fatalf("summary line: %v", err)
				}
				if traceMissed != tail.Report.Missed || traceMissed != rep.Missed {
					t.Fatalf("trace misses %d, summary %d, report %d", traceMissed, tail.Report.Missed, rep.Missed)
				}
			})
		}
	}
}
