//go:build race

package schedtest

// RaceEnabled reports whether the race detector is compiled in. The
// allocation-count tests skip themselves under -race: the detector
// makes sync.Pool deliberately drop items (to surface reuse races), so
// pool-backed paths legitimately allocate there.
const RaceEnabled = true
