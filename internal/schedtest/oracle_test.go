// Differential oracle tests: on graphs small enough for the exact
// branch-and-bound solver, every registered heuristic must land between
// the provable optimum and the trivial serial schedule. Like the
// metamorphic suite, this lives in the external test package so it can
// import casch and optimal.
package schedtest_test

import (
	"math/rand"
	"testing"

	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/example"
	"fastsched/internal/fast"
	"fastsched/internal/optimal"
	"fastsched/internal/schedtest"
)

// unboundedAlgos ignore the procs argument and may spread tasks over as
// many processors as clusters form, so their lower bound is the
// unconstrained optimum (solved with procs = v), not the procs-bounded
// one.
var unboundedAlgos = map[string]bool{
	"dsc": true, "md": true, "lc": true, "ez": true, "dcp": true,
}

// TestOracleBounds boxes every registered heuristic between the exact
// solver and the work+communication envelope on random instances with
// v <= 8 (the size at which the unconstrained optimum is still cheap to
// prove).
//
// The natural-looking upper bound — the serial sum, since running
// everything on one processor is always available — is NOT an invariant
// of these heuristics: every algorithm family in the registry commits
// greedily per node and can land above the serial sum on
// communication-dominated instances (a 300-instance probe showed
// violations for all of them, from 2/300 for ish up to 12/300 for lc).
// What did hold in every one of those 4800 runs is the envelope
// TotalWork + TotalComm, which is what this test asserts. The
// optimality lower bound is a theorem, not an observation, and is
// asserted strictly.
func TestOracleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type instance struct {
		g          *dag.Graph
		procs      int
		optBounded float64 // optimum on the instance's processor count
		optWide    float64 // unconstrained optimum (procs = v)
		envelope   float64 // TotalWork + TotalComm
	}
	instances := make([]instance, 10)
	for i := range instances {
		in := instance{
			g:     schedtest.RandomLayered(rng, 2+rng.Intn(7)),
			procs: 2 + rng.Intn(2),
		}
		b, err := optimal.New().Schedule(in.g, in.procs)
		if err != nil {
			t.Fatal(err)
		}
		w, err := optimal.New().Schedule(in.g, in.g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		in.optBounded, in.optWide, in.envelope = b.Length(), w.Length(), in.g.TotalWork()+in.g.TotalComm()
		if in.optWide > in.optBounded+1e-9 {
			t.Fatalf("instance %d: unconstrained optimum %v worse than bounded %v", i, in.optWide, in.optBounded)
		}
		instances[i] = in
	}

	for _, name := range casch.AlgorithmNames() {
		if name == "opt" {
			continue // the oracle itself
		}
		t.Run(name, func(t *testing.T) {
			s, err := casch.NewScheduler(name, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i, in := range instances {
				out, err := s.Schedule(in.g, in.procs)
				if err != nil {
					t.Fatalf("instance %d: %v", i, err)
				}
				got := out.Length()
				lower := in.optBounded
				if unboundedAlgos[name] {
					lower = in.optWide
				}
				if got < lower-1e-9 {
					t.Fatalf("instance %d (v=%d, procs=%d): makespan %v beats the proven optimum %v",
						i, in.g.NumNodes(), in.procs, got, lower)
				}
				if got > in.envelope+1e-9 {
					t.Fatalf("instance %d (v=%d, procs=%d): makespan %v exceeds work+comm %v",
						i, in.g.NumNodes(), in.procs, got, in.envelope)
				}
			}
		})
	}
}

// TestFASTMatchesOptimalOnSmallExamples pins FAST against the exact
// solver on the paper's elementary structures, where the heuristic does
// reach the optimum: a chain (serial is forced), independent tasks
// (no precedence at all), and a fork-join with light communication.
func TestFASTMatchesOptimalOnSmallExamples(t *testing.T) {
	for _, tc := range []struct {
		name  string
		g     *dag.Graph
		procs int
	}{
		{"Chain", schedtest.Chain(5, 3), 3},
		{"Independent", schedtest.Independent(4), 4},
		{"ForkJoin", schedtest.ForkJoin(4, 1), 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt, err := optimal.New().Schedule(tc.g, tc.procs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fast.Default().Schedule(tc.g, tc.procs)
			if err != nil {
				t.Fatal(err)
			}
			if got.Length() != opt.Length() {
				t.Fatalf("FAST %v != optimum %v", got.Length(), opt.Length())
			}
		})
	}
}

// TestFigure1OptimalityGap records the exact optimality picture on the
// reconstructed Figure-1 graph: the optimum on two processors is 20,
// and FAST's local search plateaus at 21 — the transfer neighbourhood
// cannot reach the optimum from the CPN-Dominate initial schedule
// (verified across 300 seeds and MaxSteps up to 1024). The pinned
// values keep both the solver and the heuristic honest: an
// "improvement" that breaks either number is a behaviour change that
// must be reviewed, not a free win.
func TestFigure1OptimalityGap(t *testing.T) {
	g := example.Graph()
	opt, err := optimal.New().Schedule(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Length() != 20 {
		t.Fatalf("optimal makespan %v, want the proven 20", opt.Length())
	}
	got, err := fast.Default().Schedule(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Length() != 21 {
		t.Fatalf("FAST makespan %v, want the documented 21 (gap of 1 to the optimum)", got.Length())
	}
}
