package schedtest

import (
	"math"
	"math/rand"
	"testing"

	"fastsched/internal/dag"
)

// This file holds the property-based metamorphic suite: known input
// transformations with provable output relations, checked on random
// graphs. Golden files prove one run is still the same run; these
// properties prove whole families of runs relate the way the scheduling
// model says they must.
//
// The three properties:
//
//   - Permutation invariance: relabeling the nodes of a graph (and
//     rebuilding its adjacency in the new order) must not change the
//     makespan of a deterministic, ID-independent scheduler. Holds only
//     on tie-free graphs — every scheduler in the repository breaks
//     priority ties by node ID, which is exactly what TieFreeRandom's
//     distinct weights make unreachable. Randomized searchers (FAST's
//     greedy walk draws node indices from the rng) are exempt by
//     construction.
//
//   - Scale invariance: multiplying every node and edge weight by a
//     positive constant must scale the makespan by exactly that
//     constant. Every scheduling decision in the repository compares
//     sums and maxima of weights, which are homogeneous of degree one;
//     with a power-of-two factor the float arithmetic is exact, so even
//     FAST's randomized search makes bit-identical decisions and the
//     relation holds with zero tolerance.
//
//   - Zero-sink neutrality: attaching a zero-weight sink below every
//     exit node (with zero-weight edges) adds no work, no
//     communication, and no constraint, so the makespan must not
//     increase.
type MetamorphicProps struct {
	Permutation bool
	Scaling     bool
	ZeroSink    bool
	// MaxNodes caps the random-graph size (0: the suite default of 40).
	// Exhaustive schedulers (branch-and-bound) set a small cap.
	MaxNodes int
	// Trials overrides the per-property trial count (0: default 8).
	Trials int
}

// TieFreeRandom builds a random layered DAG whose node and edge weights
// are all distinct irrationals-ish floats, so no two priorities
// (levels, sums of weights along paths) ever tie. This is the input
// class on which permutation invariance is provable: with ties,
// ID-based tie-breaking legitimately changes schedules.
func TieFreeRandom(rng *rand.Rand, v int) *dag.Graph {
	g := dag.New(v)
	next := 1.0
	weight := func() float64 {
		next += 0.5 + rng.Float64() // strictly increasing: never equal
		return next * (1 + 1e-9*rng.Float64())
	}
	var layers [][]dag.NodeID
	placed := 0
	for placed < v {
		width := 1 + rng.Intn(4)
		if placed+width > v {
			width = v - placed
		}
		layer := make([]dag.NodeID, 0, width)
		for i := 0; i < width; i++ {
			layer = append(layer, g.AddNode("", weight()))
			placed++
		}
		layers = append(layers, layer)
	}
	for li := 1; li < len(layers); li++ {
		for _, n := range layers[li] {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				src := layers[rng.Intn(li)]
				p := src[rng.Intn(len(src))]
				_ = g.AddEdge(p, n, weight())
			}
		}
	}
	return g
}

// PermuteGraph relabels g's nodes by perm (old ID i becomes perm[i])
// and rebuilds the adjacency in new-ID order, producing the graph an
// independent author would have built for the same problem.
func PermuteGraph(g *dag.Graph, perm []int) *dag.Graph {
	v := g.NumNodes()
	out := dag.New(v)
	inv := make([]int, v) // inv[new] = old
	for old, new := range perm {
		inv[new] = old
	}
	for new := 0; new < v; new++ {
		old := dag.NodeID(inv[new])
		out.AddNode(g.Label(old), g.Weight(old))
	}
	for new := 0; new < v; new++ {
		old := dag.NodeID(inv[new])
		for _, e := range g.Succ(old) {
			out.MustAddEdge(dag.NodeID(new), dag.NodeID(perm[e.To]), e.Weight)
		}
	}
	return out
}

// ScaleWeights returns a copy of g with every node and edge weight
// multiplied by c.
func ScaleWeights(g *dag.Graph, c float64) *dag.Graph {
	out := g.Clone()
	for i := 0; i < out.NumNodes(); i++ {
		out.SetWeight(dag.NodeID(i), out.Weight(dag.NodeID(i))*c)
	}
	for _, e := range g.Edges() {
		out.SetEdgeWeight(e.From, e.To, e.Weight*c)
	}
	return out
}

// AddZeroSink returns a copy of g with one zero-weight node appended
// below every exit node via zero-weight edges — extra structure that
// adds no work and no communication.
func AddZeroSink(g *dag.Graph) *dag.Graph {
	out := g.Clone()
	sink := out.AddNode("sink", 0)
	for _, exit := range g.ExitNodes() {
		out.MustAddEdge(exit, sink, 0)
	}
	return out
}

// Metamorphic runs the enabled metamorphic properties against f.
// Schedulers are exempted per property with documented cause by the
// caller (see the registry table in the tests), never silently.
func Metamorphic(t *testing.T, name string, f ScheduleFunc, props MetamorphicProps) {
	t.Helper()
	maxNodes := props.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 40
	}
	trials := props.Trials
	if trials <= 0 {
		trials = 8
	}
	makespan := func(t *testing.T, g *dag.Graph, procs int) float64 {
		t.Helper()
		_, out, err := f(g, procs)
		if err != nil {
			t.Fatal(err)
		}
		return out.Length()
	}

	if props.Permutation {
		t.Run("PermutationInvariance", func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			for trial := 0; trial < trials; trial++ {
				g := TieFreeRandom(rng, 2+rng.Intn(maxNodes-1))
				procs := 1 + rng.Intn(4)
				perm := rng.Perm(g.NumNodes())
				base := makespan(t, g, procs)
				perturbed := makespan(t, PermuteGraph(g, perm), procs)
				if math.Abs(base-perturbed) > 1e-9*(1+base) {
					t.Fatalf("trial %d (%s): makespan %v became %v after node relabeling",
						trial, name, base, perturbed)
				}
			}
		})
	}

	if props.Scaling {
		t.Run("ScaleInvariance", func(t *testing.T) {
			rng := rand.New(rand.NewSource(202))
			for trial := 0; trial < trials; trial++ {
				g := TieFreeRandom(rng, 2+rng.Intn(maxNodes-1))
				procs := 1 + rng.Intn(4)
				c := []float64{2, 4, 0.5}[trial%3] // powers of two: exact float scaling
				base := makespan(t, g, procs)
				scaled := makespan(t, ScaleWeights(g, c), procs)
				if scaled != c*base {
					t.Fatalf("trial %d (%s): makespan %v scaled by %v gave %v, want exactly %v",
						trial, name, base, c, scaled, c*base)
				}
			}
		})
	}

	if props.ZeroSink {
		t.Run("ZeroSinkNeverWorsens", func(t *testing.T) {
			rng := rand.New(rand.NewSource(303))
			for trial := 0; trial < trials; trial++ {
				g := TieFreeRandom(rng, 2+rng.Intn(maxNodes-1))
				procs := 1 + rng.Intn(4)
				base := makespan(t, g, procs)
				augmented := makespan(t, AddZeroSink(g), procs)
				if augmented > base+1e-9 {
					t.Fatalf("trial %d (%s): zero-weight sink raised makespan %v -> %v",
						trial, name, base, augmented)
				}
			}
		})
	}
}
