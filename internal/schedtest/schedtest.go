// Package schedtest provides a conformance suite shared by the tests of
// every scheduling algorithm in this repository: random task-graph
// generation and the invariants any correct scheduler must uphold
// (validity against the DAG, determinism, processor bounds, sane
// behaviour on degenerate graphs).
package schedtest

import (
	"fmt"
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/sched"
)

// RandomLayered builds a random layered DAG with v nodes: layers of
// width 1..4, each node wired to 1..3 nodes in earlier layers, node
// weights in [1,9] and edge weights in [0,19].
func RandomLayered(rng *rand.Rand, v int) *dag.Graph {
	g := dag.New(v)
	var layers [][]dag.NodeID
	placed := 0
	for placed < v {
		width := 1 + rng.Intn(4)
		if placed+width > v {
			width = v - placed
		}
		layer := make([]dag.NodeID, 0, width)
		for i := 0; i < width; i++ {
			layer = append(layer, g.AddNode("", 1+float64(rng.Intn(9))))
			placed++
		}
		layers = append(layers, layer)
	}
	for li := 1; li < len(layers); li++ {
		for _, n := range layers[li] {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				src := layers[rng.Intn(li)]
				p := src[rng.Intn(len(src))]
				_ = g.AddEdge(p, n, float64(rng.Intn(20)))
			}
		}
	}
	return g
}

// Chain returns a linear chain of n unit-weight nodes with the given
// communication cost on every edge.
func Chain(n int, comm float64) *dag.Graph {
	g := dag.New(n)
	prev := dag.None
	for i := 0; i < n; i++ {
		id := g.AddNode("", 1)
		if prev != dag.None {
			g.MustAddEdge(prev, id, comm)
		}
		prev = id
	}
	return g
}

// ForkJoin returns an entry node fanning out to width children that all
// join into one exit node.
func ForkJoin(width int, comm float64) *dag.Graph {
	g := dag.New(width + 2)
	entry := g.AddNode("fork", 1)
	exit := dag.None
	mids := make([]dag.NodeID, width)
	for i := range mids {
		mids[i] = g.AddNode("", 2)
		g.MustAddEdge(entry, mids[i], comm)
	}
	exit = g.AddNode("join", 1)
	for _, m := range mids {
		g.MustAddEdge(m, exit, comm)
	}
	return g
}

// RandomDAG builds a sparse unstructured random DAG: every pair i < j
// is wired with probability density, node weights in [1,9] and edge
// weights in [0,9]. Unlike RandomLayered there is no layer discipline,
// so antichains span the whole graph — the adversarial shape for
// schedulers tuned to layered inputs.
func RandomDAG(rng *rand.Rand, v int, density float64) *dag.Graph {
	g := dag.New(v)
	ids := make([]dag.NodeID, v)
	for i := 0; i < v; i++ {
		ids[i] = g.AddNode("", 1+float64(rng.Intn(9)))
	}
	for i := 0; i < v; i++ {
		for j := i + 1; j < v; j++ {
			if rng.Float64() < density {
				g.MustAddEdge(ids[i], ids[j], float64(rng.Intn(10)))
			}
		}
	}
	return g
}

// CorpusInstance is one seeded workload of the oracle corpus.
type CorpusInstance struct {
	// Name identifies the instance (family plus seed) in test failures.
	Name string
	// Family is "layered", "forkjoin" or "random".
	Family string
	Seed   int64
	Graph  *dag.Graph
	// Procs is the processor count the instance is solved on — chosen
	// per family so the exact solver proves optimality within test
	// budgets.
	Procs int
}

// OracleCorpus returns the pinned v ≈ 20–25 instance set behind the
// wide optimality-boxing suite: five layered DAGs (v = 25, 2 procs),
// five communication-weighted fork-joins (v = 20–25, 4 procs), and
// five sparse unstructured random DAGs (v = 22, 2 procs). Seeds and
// shapes are curated so internal/optimal proves every true optimum
// within milliseconds-to-tens-of-milliseconds (calibrated by expansion
// count, so the suite also survives -race slowdowns); the corpus is
// fully deterministic across runs.
func OracleCorpus() []CorpusInstance {
	var out []CorpusInstance
	for _, seed := range []int64{1, 2, 3, 4, 7} {
		g := RandomLayered(rand.New(rand.NewSource(seed)), 25)
		out = append(out, CorpusInstance{
			Name:   fmt.Sprintf("layered/v25/seed%d", seed),
			Family: "layered", Seed: seed, Graph: g, Procs: 2,
		})
	}
	// Width + entry and exit = v; comm spread over the spokes makes
	// colocation vs distribution a real decision. The (width, comm)
	// pairs avoid the hard cells (e.g. width 23 with comm 2, 4 or 6
	// need millions of expansions).
	for _, fc := range []struct {
		width int
		comm  float64
	}{{18, 3}, {18, 6}, {20, 5}, {23, 3}, {23, 7}} {
		g := ForkJoin(fc.width, fc.comm)
		out = append(out, CorpusInstance{
			Name:   fmt.Sprintf("forkjoin/w%dc%g", fc.width, fc.comm),
			Family: "forkjoin", Seed: int64(fc.width), Graph: g, Procs: 4,
		})
	}
	for _, seed := range []int64{1, 4, 6, 7, 8} {
		g := RandomDAG(rand.New(rand.NewSource(seed)), 22, 0.15)
		out = append(out, CorpusInstance{
			Name:   fmt.Sprintf("random/v22/seed%d", seed),
			Family: "random", Seed: seed, Graph: g, Procs: 2,
		})
	}
	return out
}

// Independent returns n edge-free nodes with weights 1..n — the
// degenerate "embarrassingly parallel" graph every scheduler must
// handle without tripping over missing precedence structure.
func Independent(n int) *dag.Graph {
	g := dag.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("", float64(1+i%4))
	}
	return g
}

// ScheduleFunc is the shape the conformance suite exercises: schedule g
// on procs processors and return the schedule plus the graph it must be
// validated against. Plain schedulers return g itself; transforming
// schedulers (task duplication) return their derived graph, whose nodes
// the schedule is indexed by.
type ScheduleFunc func(g *dag.Graph, procs int) (*dag.Graph, *sched.Schedule, error)

// Adapt wraps a sched.Scheduler as a ScheduleFunc that validates
// against the input graph.
func Adapt(s sched.Scheduler) ScheduleFunc {
	return func(g *dag.Graph, procs int) (*dag.Graph, *sched.Schedule, error) {
		out, err := s.Schedule(g, procs)
		return g, out, err
	}
}

// graphCase is one fixed-graph conformance case. Validity of the
// schedule against the eval graph is always checked; check adds
// case-specific invariants on top (orig is the input graph, eval the
// graph the schedule is indexed by).
type graphCase struct {
	name  string
	build func() *dag.Graph
	procs int
	check func(t *testing.T, orig, eval *dag.Graph, out *sched.Schedule)
}

// graphCases is the table of degenerate graphs every scheduler must
// survive. Bounds are computed on the input graph: they stay valid for
// transforming schedulers because every original task still runs at
// least once and duplication never relaxes a dependence chain.
var graphCases = []graphCase{
	{
		name:  "SingleNode",
		build: func() *dag.Graph { g := dag.New(1); g.AddNode("solo", 3); return g },
		procs: 2,
		check: func(t *testing.T, orig, eval *dag.Graph, out *sched.Schedule) {
			if out.Length() != 3 {
				t.Fatalf("length = %v, want 3", out.Length())
			}
		},
	},
	{
		name:  "ChainStaysSequential",
		build: func() *dag.Graph { return Chain(10, 5) },
		procs: 4,
		check: func(t *testing.T, orig, eval *dag.Graph, out *sched.Schedule) {
			// A chain cannot beat serial execution; any sane scheduler also
			// avoids paying communication on every hop, so length must be at
			// most serial + all comm and at least serial.
			serial := orig.TotalWork()
			if out.Length() < serial-1e-9 {
				t.Fatalf("chain scheduled in %v < serial %v", out.Length(), serial)
			}
			if out.Length() > serial+orig.TotalComm()+1e-9 {
				t.Fatalf("chain scheduled in %v, worse than maximally-communicating bound", out.Length())
			}
		},
	},
	{
		name:  "ForkJoinValid",
		build: func() *dag.Graph { return ForkJoin(8, 1) },
		procs: 4,
	},
	{
		name:  "WideIndependent",
		build: func() *dag.Graph { return Independent(12) },
		procs: 3,
		check: func(t *testing.T, orig, eval *dag.Graph, out *sched.Schedule) {
			// No edges: length can never exceed serial execution, and the
			// area bound holds on whatever processors were used.
			if out.Length() > orig.TotalWork()+1e-9 {
				t.Fatalf("independent tasks scheduled in %v > serial %v", out.Length(), orig.TotalWork())
			}
			if used := out.ProcsUsed(); used > 0 && out.Length() < orig.TotalWork()/float64(used)-1e-9 {
				t.Fatalf("length %v beats the area bound on %d procs", out.Length(), used)
			}
		},
	},
	{
		name: "ZeroCommGraph",
		build: func() *dag.Graph {
			rng := rand.New(rand.NewSource(99))
			g := RandomLayered(rng, 30)
			for _, e := range g.Edges() {
				g.SetEdgeWeight(e.From, e.To, 0)
			}
			return g
		},
		procs: 4,
	},
}

// Conformance runs the shared invariant suite against s.
//
// bounded states whether the scheduler honours the procs argument (DSC
// and MD are unbounded by definition and exempt from the processor-cap
// check).
func Conformance(t *testing.T, s sched.Scheduler, bounded bool) {
	t.Helper()
	ConformanceFunc(t, s.Name(), bounded, Adapt(s))
}

// ConformanceFunc runs the shared invariant suite against an arbitrary
// scheduling function (see ScheduleFunc); name is reported in place of
// sched.Scheduler.Name.
func ConformanceFunc(t *testing.T, name string, bounded bool, f ScheduleFunc) {
	t.Helper()

	t.Run("EmptyGraphRejected", func(t *testing.T) {
		if _, _, err := f(dag.New(0), 2); err == nil {
			t.Fatal("empty graph accepted")
		}
	})

	for _, c := range graphCases {
		t.Run(c.name, func(t *testing.T) {
			g := c.build()
			eval, out, err := f(g, c.procs)
			if err != nil {
				t.Fatal(err)
			}
			if err := sched.Validate(eval, out); err != nil {
				t.Fatal(err)
			}
			if bounded && out.ProcsUsed() > c.procs {
				t.Fatalf("used %d of %d procs", out.ProcsUsed(), c.procs)
			}
			if c.check != nil {
				c.check(t, g, eval, out)
			}
		})
	}

	t.Run("RandomGraphsValid", func(t *testing.T) {
		rng := rand.New(rand.NewSource(21))
		for trial := 0; trial < 25; trial++ {
			g := RandomLayered(rng, 2+rng.Intn(60))
			procs := 1 + rng.Intn(6)
			eval, out, err := f(g, procs)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := sched.Validate(eval, out); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if bounded && out.ProcsUsed() > procs {
				t.Fatalf("trial %d: used %d of %d procs", trial, out.ProcsUsed(), procs)
			}
			if out.Length() > g.TotalWork()+g.TotalComm()+1e-9 {
				t.Fatalf("trial %d: length %v beyond any reasonable bound", trial, out.Length())
			}
			// Two universal lower bounds: the computation-only critical
			// path (no schedule can shorten a dependence chain) and the
			// area bound (total work over processors actually used). Both
			// are computed on the input graph and survive duplication:
			// clones only add work and never shorten a chain.
			l, err := dag.ComputeLevels(g)
			if err != nil {
				t.Fatal(err)
			}
			compCP := 0.0
			for i := 0; i < g.NumNodes(); i++ {
				if l.Static[dag.NodeID(i)] > compCP {
					compCP = l.Static[dag.NodeID(i)]
				}
			}
			if out.Length() < compCP-1e-9 {
				t.Fatalf("trial %d: length %v beats the dependence bound %v", trial, out.Length(), compCP)
			}
			if used := out.ProcsUsed(); used > 0 && out.Length() < g.TotalWork()/float64(used)-1e-9 {
				t.Fatalf("trial %d: length %v beats the area bound", trial, out.Length())
			}
		}
	})

	t.Run("Deterministic", func(t *testing.T) {
		rng := rand.New(rand.NewSource(33))
		g := RandomLayered(rng, 40)
		evalA, a, err := f(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		evalB, b, err := f(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if evalA.NumNodes() != evalB.NumNodes() {
			t.Fatalf("eval graphs differ: %d vs %d nodes", evalA.NumNodes(), evalB.NumNodes())
		}
		for i := 0; i < evalA.NumNodes(); i++ {
			n := dag.NodeID(i)
			if a.Of(n) != b.Of(n) {
				t.Fatalf("node %d: %+v vs %+v", n, a.Of(n), b.Of(n))
			}
		}
	})

	t.Run("NameNonEmpty", func(t *testing.T) {
		if name == "" {
			t.Fatal("scheduler has no name")
		}
	})
}
