// Package schedtest provides a conformance suite shared by the tests of
// every scheduling algorithm in this repository: random task-graph
// generation and the invariants any correct scheduler must uphold
// (validity against the DAG, determinism, processor bounds, sane
// behaviour on degenerate graphs).
package schedtest

import (
	"math/rand"
	"testing"

	"fastsched/internal/dag"
	"fastsched/internal/sched"
)

// RandomLayered builds a random layered DAG with v nodes: layers of
// width 1..4, each node wired to 1..3 nodes in earlier layers, node
// weights in [1,9] and edge weights in [0,19].
func RandomLayered(rng *rand.Rand, v int) *dag.Graph {
	g := dag.New(v)
	var layers [][]dag.NodeID
	placed := 0
	for placed < v {
		width := 1 + rng.Intn(4)
		if placed+width > v {
			width = v - placed
		}
		layer := make([]dag.NodeID, 0, width)
		for i := 0; i < width; i++ {
			layer = append(layer, g.AddNode("", 1+float64(rng.Intn(9))))
			placed++
		}
		layers = append(layers, layer)
	}
	for li := 1; li < len(layers); li++ {
		for _, n := range layers[li] {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				src := layers[rng.Intn(li)]
				p := src[rng.Intn(len(src))]
				_ = g.AddEdge(p, n, float64(rng.Intn(20)))
			}
		}
	}
	return g
}

// Chain returns a linear chain of n unit-weight nodes with the given
// communication cost on every edge.
func Chain(n int, comm float64) *dag.Graph {
	g := dag.New(n)
	prev := dag.None
	for i := 0; i < n; i++ {
		id := g.AddNode("", 1)
		if prev != dag.None {
			g.MustAddEdge(prev, id, comm)
		}
		prev = id
	}
	return g
}

// ForkJoin returns an entry node fanning out to width children that all
// join into one exit node.
func ForkJoin(width int, comm float64) *dag.Graph {
	g := dag.New(width + 2)
	entry := g.AddNode("fork", 1)
	exit := dag.None
	mids := make([]dag.NodeID, width)
	for i := range mids {
		mids[i] = g.AddNode("", 2)
		g.MustAddEdge(entry, mids[i], comm)
	}
	exit = g.AddNode("join", 1)
	for _, m := range mids {
		g.MustAddEdge(m, exit, comm)
	}
	return g
}

// Conformance runs the shared invariant suite against s.
//
// bounded states whether the scheduler honours the procs argument (DSC
// and MD are unbounded by definition and exempt from the processor-cap
// check).
func Conformance(t *testing.T, s sched.Scheduler, bounded bool) {
	t.Helper()

	t.Run("EmptyGraphRejected", func(t *testing.T) {
		if _, err := s.Schedule(dag.New(0), 2); err == nil {
			t.Fatal("empty graph accepted")
		}
	})

	t.Run("SingleNode", func(t *testing.T) {
		g := dag.New(1)
		g.AddNode("solo", 3)
		out, err := s.Schedule(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(g, out); err != nil {
			t.Fatal(err)
		}
		if out.Length() != 3 {
			t.Fatalf("length = %v, want 3", out.Length())
		}
	})

	t.Run("ChainStaysSequential", func(t *testing.T) {
		g := Chain(10, 5)
		out, err := s.Schedule(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(g, out); err != nil {
			t.Fatal(err)
		}
		// A chain cannot beat serial execution; any sane scheduler also
		// avoids paying communication on every hop, so length must be at
		// most serial + all comm and at least serial.
		serial := g.TotalWork()
		if out.Length() < serial-1e-9 {
			t.Fatalf("chain scheduled in %v < serial %v", out.Length(), serial)
		}
		if out.Length() > serial+g.TotalComm()+1e-9 {
			t.Fatalf("chain scheduled in %v, worse than maximally-communicating bound", out.Length())
		}
	})

	t.Run("ForkJoinValid", func(t *testing.T) {
		g := ForkJoin(8, 1)
		out, err := s.Schedule(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(g, out); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ZeroCommGraph", func(t *testing.T) {
		rng := rand.New(rand.NewSource(99))
		g := RandomLayered(rng, 30)
		for _, e := range g.Edges() {
			g.SetEdgeWeight(e.From, e.To, 0)
		}
		out, err := s.Schedule(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(g, out); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("RandomGraphsValid", func(t *testing.T) {
		rng := rand.New(rand.NewSource(21))
		for trial := 0; trial < 25; trial++ {
			g := RandomLayered(rng, 2+rng.Intn(60))
			procs := 1 + rng.Intn(6)
			out, err := s.Schedule(g, procs)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := sched.Validate(g, out); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if bounded && out.ProcsUsed() > procs {
				t.Fatalf("trial %d: used %d of %d procs", trial, out.ProcsUsed(), procs)
			}
			if out.Length() > g.TotalWork()+g.TotalComm()+1e-9 {
				t.Fatalf("trial %d: length %v beyond any reasonable bound", trial, out.Length())
			}
			// Two universal lower bounds: the computation-only critical
			// path (no schedule can shorten a dependence chain) and the
			// area bound (total work over processors actually used).
			l, err := dag.ComputeLevels(g)
			if err != nil {
				t.Fatal(err)
			}
			compCP := 0.0
			for i := 0; i < g.NumNodes(); i++ {
				if l.Static[dag.NodeID(i)] > compCP {
					compCP = l.Static[dag.NodeID(i)]
				}
			}
			if out.Length() < compCP-1e-9 {
				t.Fatalf("trial %d: length %v beats the dependence bound %v", trial, out.Length(), compCP)
			}
			if used := out.ProcsUsed(); used > 0 && out.Length() < g.TotalWork()/float64(used)-1e-9 {
				t.Fatalf("trial %d: length %v beats the area bound", trial, out.Length())
			}
		}
	})

	t.Run("Deterministic", func(t *testing.T) {
		rng := rand.New(rand.NewSource(33))
		g := RandomLayered(rng, 40)
		a, err := s.Schedule(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Schedule(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.NumNodes(); i++ {
			n := dag.NodeID(i)
			if a.Of(n) != b.Of(n) {
				t.Fatalf("node %d: %+v vs %+v", n, a.Of(n), b.Of(n))
			}
		}
	})

	t.Run("NameNonEmpty", func(t *testing.T) {
		if s.Name() == "" {
			t.Fatal("scheduler has no name")
		}
	})
}
