// Metamorphic property tests over the full conformance registry. This
// lives in the external test package so it can import casch: schedtest
// itself is imported by the scheduler packages' tests, and casch
// imports those packages.
package schedtest_test

import (
	"sort"
	"testing"

	"fastsched/internal/casch"
	"fastsched/internal/schedtest"
)

// metamorphicMatrix states which metamorphic properties each registered
// algorithm satisfies. Exemptions are never silent — each false carries
// its empirically confirmed cause:
//
//   - fast, pfast: the greedy local search draws node indices from its
//     rng over the ID-ordered blocking list, so relabeling legitimately
//     changes the search trajectory (permutation off). For the same
//     reason the zero-sink comparison is a race between two independent
//     random walks and the augmented run loses about one time in five
//     (zero-sink off). Only the scale property — bit-exact decisions
//     under power-of-two factors — binds on the search.
//   - fast-initial: phase 1 scans a node's candidate processors in
//     predecessor storage order, and the earliest-start comparison
//     genuinely ties across processors whenever a remote parent's
//     arrival is the binding constraint (the arrival is identical on
//     every processor but the parent's own), so relabeling flips the
//     winner (permutation off). Adding a zero-weight sink turns every
//     node into an ancestor of a critical-path node, reclassifying OBNs
//     as IBNs and reshaping the CPN-Dominant list (zero-sink off).
//   - opt: branch-and-bound, exponential — property checks run on small
//     graphs with few trials.
//   - mh: the Mesh interconnect charges a constant per-hop latency that
//     does not scale with the graph's weights, so uniform scaling is
//     legitimately non-homogeneous (scaling off, fails 24 of 60 probe
//     trials).
var metamorphicMatrix = map[string]schedtest.MetamorphicProps{
	"fast":         {Permutation: false, Scaling: true, ZeroSink: false},
	"fast-initial": {Permutation: false, Scaling: true, ZeroSink: false},
	// fast-hier clusters along b-level priority order before delegating
	// to the inner FAST search, so it inherits FAST's relabeling and
	// zero-sink sensitivities (both reshape the priority order and the
	// inner search trajectory); scaling by powers of two leaves every
	// clustering comparison and search decision bit-identical.
	"fast-hier": {Permutation: false, Scaling: true, ZeroSink: false},
	"pfast":     {Permutation: false, Scaling: true, ZeroSink: false},
	"dsc":       {Permutation: true, Scaling: true, ZeroSink: true},
	"md":        {Permutation: true, Scaling: true, ZeroSink: true},
	"etf":       {Permutation: true, Scaling: true, ZeroSink: true},
	"dls":       {Permutation: true, Scaling: true, ZeroSink: true},
	"hlfet":     {Permutation: true, Scaling: true, ZeroSink: true},
	"mcp":       {Permutation: true, Scaling: true, ZeroSink: true},
	"lc":        {Permutation: true, Scaling: true, ZeroSink: true},
	"ez":        {Permutation: true, Scaling: true, ZeroSink: true},
	"dsc-map":   {Permutation: true, Scaling: true, ZeroSink: true},
	"lc-map":    {Permutation: true, Scaling: true, ZeroSink: true},
	"ish":       {Permutation: true, Scaling: true, ZeroSink: true},
	"dcp":       {Permutation: true, Scaling: true, ZeroSink: true},
	"opt":       {Permutation: true, Scaling: true, ZeroSink: true, MaxNodes: 8, Trials: 3},
	// mh zero-sink also fails: the mesh charges per-hop latency even on
	// a zero-weight edge, so the sink is not free unless it lands on the
	// latest parent's processor.
	"mh": {Permutation: true, Scaling: false, ZeroSink: false},
}

// TestMetamorphicMatrixComplete pins the matrix to the registry: a new
// algorithm must take a documented stance on every property before it
// ships.
func TestMetamorphicMatrixComplete(t *testing.T) {
	for _, name := range casch.AlgorithmNames() {
		if _, ok := metamorphicMatrix[name]; !ok {
			t.Errorf("algorithm %q registered without a metamorphic property entry", name)
		}
	}
	if extra := len(metamorphicMatrix) - len(casch.AlgorithmNames()); extra > 0 {
		t.Errorf("%d matrix entries name unregistered algorithms", extra)
	}
}

func TestMetamorphic(t *testing.T) {
	names := casch.AlgorithmNames()
	sort.Strings(names)
	for _, name := range names {
		props, ok := metamorphicMatrix[name]
		if !ok {
			continue // TestMetamorphicMatrixComplete reports it
		}
		t.Run(name, func(t *testing.T) {
			s, err := casch.NewScheduler(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			schedtest.Metamorphic(t, name, schedtest.Adapt(s), props)
		})
	}
}
