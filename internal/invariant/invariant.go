// Package invariant is the single home of the repository's internal
// invariant checks. User-reachable error paths return typed errors;
// conditions that can only arise from a programming bug inside this
// module go through Assertf, so every remaining panic site is explicit
// and greppable.
package invariant

import "fmt"

// Assertf panics with a formatted message when cond is false. It must
// only guard conditions that are unreachable from user input — a
// firing assertion is a bug in this module, not a bad input.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("invariant violated: "+format, args...))
	}
}
