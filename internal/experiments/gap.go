package experiments

import (
	"fmt"

	"fastsched/internal/dls"
	"fastsched/internal/etf"
	"fastsched/internal/fast"
	"fastsched/internal/hlfet"
	"fastsched/internal/mcp"
	"fastsched/internal/optimal"
	"fastsched/internal/sched"
	"fastsched/internal/stats"
	"fastsched/internal/table"
	"fastsched/internal/workload"
)

// GapStudy measures heuristic optimality gaps against the exact
// branch-and-bound solver on small random instances — an extension the
// paper could not run (exact solving was and is exponential; it is
// feasible here only because the instances are tiny).
type GapStudy struct {
	// Instances is the number of random graphs.
	Instances int
	// MaxV bounds the instance size (nodes); the solver is exponential.
	MaxV int
	// Procs is the machine size.
	Procs int
	// Seed drives instance generation.
	Seed int64
}

// DefaultGapStudy measures 25 instances of up to 9 nodes on 2 procs.
func DefaultGapStudy() *GapStudy {
	return &GapStudy{Instances: 25, MaxV: 9, Procs: 2, Seed: 13}
}

// GapResults holds per-heuristic gap statistics (schedule length over
// the exact optimum).
type GapResults struct {
	Study      *GapStudy
	Algorithms []string
	// Gaps[i] holds algorithm i's per-instance ratios.
	Gaps [][]float64
	// Optimal counts how often each algorithm matched the optimum.
	Optimal []int
	// Solved is the number of instances the exact solver finished.
	Solved int
}

// Run generates the instances, solves each exactly, and scores the
// heuristics.
func (st *GapStudy) Run() (*GapResults, error) {
	scheds := []sched.Scheduler{
		fast.Default(), etf.New(), dls.New(), mcp.New(), hlfet.New(),
	}
	res := &GapResults{Study: st}
	for _, s := range scheds {
		res.Algorithms = append(res.Algorithms, s.Name())
	}
	res.Gaps = make([][]float64, len(scheds))
	res.Optimal = make([]int, len(scheds))

	solver := optimal.New()
	for i := 0; i < st.Instances; i++ {
		g, err := workload.Random(workload.RandomOpts{
			V:             4 + (i*3)%(st.MaxV-3),
			Seed:          st.Seed + int64(i),
			MeanInDegree:  2,
			MaxNodeWeight: 8,
			MaxEdgeWeight: 8,
		})
		if err != nil {
			return nil, err
		}
		opt, err := solver.Schedule(g, st.Procs)
		if err != nil {
			continue // budget exceeded: skip the instance
		}
		res.Solved++
		for si, s := range scheds {
			hs, err := s.Schedule(g, st.Procs)
			if err != nil {
				return nil, fmt.Errorf("experiments: gap %s: %w", s.Name(), err)
			}
			ratio := hs.Length() / opt.Length()
			res.Gaps[si] = append(res.Gaps[si], ratio)
			if ratio <= 1+1e-9 {
				res.Optimal[si]++
			}
		}
	}
	if res.Solved == 0 {
		return nil, fmt.Errorf("experiments: gap study solved no instances")
	}
	return res, nil
}

// Render returns the gap table: mean/max gap and how often each
// heuristic found an optimal schedule.
func (r *GapResults) Render() string {
	t := table.New(
		fmt.Sprintf("Optimality gaps on %d small instances (<= %d nodes, %d processors)",
			r.Solved, r.Study.MaxV, r.Study.Procs),
		"Algorithm", "mean gap", "max gap", "optimal")
	for i, alg := range r.Algorithms {
		sum := stats.Summarize(r.Gaps[i])
		t.AddRow(alg,
			fmt.Sprintf("%.3f", sum.Mean),
			fmt.Sprintf("%.3f", sum.Max),
			fmt.Sprintf("%d/%d", r.Optimal[i], r.Solved))
	}
	return t.String()
}
