package experiments

import (
	"fmt"

	"fastsched/internal/dls"
	"fastsched/internal/etf"
	"fastsched/internal/fast"
	"fastsched/internal/hlfet"
	"fastsched/internal/mcp"
	"fastsched/internal/optimal"
	"fastsched/internal/sched"
	"fastsched/internal/stats"
	"fastsched/internal/table"
	"fastsched/internal/workload"
)

// GapStudy measures heuristic optimality gaps against the exact
// branch-and-bound solver on small random instances — an extension the
// paper could not run (exact solving was and is exponential; it is
// feasible here only because the instances are tiny).
type GapStudy struct {
	// Instances is the number of random graphs.
	Instances int
	// MaxV bounds the instance size (nodes); the solver is exponential.
	MaxV int
	// Procs is the machine size.
	Procs int
	// Seed drives instance generation.
	Seed int64
	// MaxExpansions caps the exact solver's effort per instance
	// (0: the solver default). Instances whose proof does not finish
	// are skipped and counted in GapResults.Skipped rather than
	// aborting the study.
	MaxExpansions int64
}

// DefaultGapStudy measures 15 instances of up to 22 nodes on 2 procs —
// the scale the rebuilt branch-and-bound solver handles routinely
// (the previous solver topped out near v = 9). The per-instance
// expansion cap keeps a pathological instance from stalling the study;
// it is simply skipped and reported.
func DefaultGapStudy() *GapStudy {
	return &GapStudy{Instances: 15, MaxV: 22, Procs: 2, Seed: 13, MaxExpansions: 1_500_000}
}

// GapResults holds per-heuristic gap statistics (schedule length over
// the exact optimum).
type GapResults struct {
	Study      *GapStudy
	Algorithms []string
	// Gaps[i] holds algorithm i's per-instance ratios.
	Gaps [][]float64
	// Optimal counts how often each algorithm matched the optimum.
	Optimal []int
	// Solved is the number of instances the exact solver proved;
	// Skipped counts those whose proof exceeded the expansion cap.
	Solved  int
	Skipped int
	// Expansions is the total branch-and-bound work across the proven
	// instances, from the solver's Report.
	Expansions int64
}

// Run generates the instances, solves each exactly, and scores the
// heuristics.
func (st *GapStudy) Run() (*GapResults, error) {
	scheds := []sched.Scheduler{
		fast.Default(), etf.New(), dls.New(), mcp.New(), hlfet.New(),
	}
	res := &GapResults{Study: st}
	for _, s := range scheds {
		res.Algorithms = append(res.Algorithms, s.Name())
	}
	res.Gaps = make([][]float64, len(scheds))
	res.Optimal = make([]int, len(scheds))

	solver := optimal.New()
	solver.MaxExpansions = st.MaxExpansions
	for i := 0; i < st.Instances; i++ {
		g, err := workload.Random(workload.RandomOpts{
			V:             4 + (i*3)%(st.MaxV-3),
			Seed:          st.Seed + int64(i),
			MeanInDegree:  2,
			MaxNodeWeight: 8,
			MaxEdgeWeight: 8,
		})
		if err != nil {
			return nil, err
		}
		opt, rep, err := solver.Solve(g, st.Procs)
		if err != nil || !rep.Proven {
			// Expansion cap hit: an unproven incumbent is not an oracle,
			// so the instance is skipped (and surfaced), never scored.
			res.Skipped++
			continue
		}
		res.Solved++
		res.Expansions += rep.Expansions
		for si, s := range scheds {
			hs, err := s.Schedule(g, st.Procs)
			if err != nil {
				return nil, fmt.Errorf("experiments: gap %s: %w", s.Name(), err)
			}
			ratio := hs.Length() / opt.Length()
			res.Gaps[si] = append(res.Gaps[si], ratio)
			if ratio <= 1+1e-9 {
				res.Optimal[si]++
			}
		}
	}
	if res.Solved == 0 {
		return nil, fmt.Errorf("experiments: gap study solved no instances")
	}
	return res, nil
}

// Render returns the gap table: mean/max gap and how often each
// heuristic found an optimal schedule.
func (r *GapResults) Render() string {
	title := fmt.Sprintf("Optimality gaps on %d proven instances (<= %d nodes, %d processors)",
		r.Solved, r.Study.MaxV, r.Study.Procs)
	if r.Skipped > 0 {
		title += fmt.Sprintf(" — %d unproven, skipped", r.Skipped)
	}
	t := table.New(title, "Algorithm", "mean gap", "max gap", "optimal")
	for i, alg := range r.Algorithms {
		sum := stats.Summarize(r.Gaps[i])
		t.AddRow(alg,
			fmt.Sprintf("%.3f", sum.Mean),
			fmt.Sprintf("%.3f", sum.Max),
			fmt.Sprintf("%d/%d", r.Optimal[i], r.Solved))
	}
	return t.String()
}
