package experiments

import (
	"fmt"
	"math"
	"time"

	"fastsched/internal/dls"
	"fastsched/internal/dsc"
	"fastsched/internal/etf"
	"fastsched/internal/fast"
	"fastsched/internal/sched"
	"fastsched/internal/stats"
	"fastsched/internal/table"
	"fastsched/internal/workload"
)

// ComplexityStudy empirically validates the complexity claims at the
// heart of the paper: it times each scheduler across growing random
// graphs (edge count proportional to node count) and fits the growth
// exponent of time versus graph size by log-log regression. FAST's
// O(e) claim predicts an exponent near 1; ETF/DLS's O(p·v^2) predicts
// near 2 for fixed p.
type ComplexityStudy struct {
	// Sizes are the node counts (edges scale linearly via MeanInDegree).
	Sizes []int
	// Procs is the bounded-machine grant.
	Procs int
	// Reps medians away timing noise.
	Reps int
	// Seed drives graph generation.
	Seed int64
}

// DefaultComplexityStudy spans 500..4000 nodes.
func DefaultComplexityStudy() *ComplexityStudy {
	return &ComplexityStudy{Sizes: []int{500, 1000, 2000, 4000}, Procs: 64, Reps: 3, Seed: 17}
}

// ComplexityResults holds the timings and fitted exponents.
type ComplexityResults struct {
	Study      *ComplexityStudy
	Sizes      []int
	Edges      []int
	Algorithms []string
	// Times[i][j] is algorithm i's median scheduling time at size j.
	Times [][]time.Duration
	// Exponent[i] is the fitted log-log slope of time over (v + e).
	Exponent []float64
}

// Run executes the study.
func (st *ComplexityStudy) Run() (*ComplexityResults, error) {
	scheds := []sched.Scheduler{
		fast.New(fast.Options{Seed: Seed}),
		dsc.New(),
		etf.New(),
		dls.New(),
	}
	reps := st.Reps
	if reps < 1 {
		reps = 1
	}
	res := &ComplexityResults{Study: st, Sizes: st.Sizes}
	for _, s := range scheds {
		res.Algorithms = append(res.Algorithms, s.Name())
	}
	res.Times = make([][]time.Duration, len(scheds))

	for j, v := range st.Sizes {
		g, err := workload.Random(workload.RandomOpts{V: v, Seed: st.Seed + int64(j), MeanInDegree: 8})
		if err != nil {
			return nil, err
		}
		res.Edges = append(res.Edges, g.NumEdges())
		for i, s := range scheds {
			procs := st.Procs
			if unboundedByDefinition(s.Name()) {
				procs = 0
			}
			samples := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				begin := time.Now()
				if _, err := s.Schedule(g, procs); err != nil {
					return nil, fmt.Errorf("experiments: complexity %s v=%d: %w", s.Name(), v, err)
				}
				samples = append(samples, float64(time.Since(begin)))
			}
			res.Times[i] = append(res.Times[i], time.Duration(stats.Summarize(samples).Median))
		}
	}
	// Fit exponents over problem size v + e.
	logSize := make([]float64, len(st.Sizes))
	for j := range st.Sizes {
		logSize[j] = math.Log(float64(st.Sizes[j] + res.Edges[j]))
	}
	for i := range scheds {
		logTime := make([]float64, len(st.Sizes))
		for j := range st.Sizes {
			logTime[j] = math.Log(float64(res.Times[i][j]))
		}
		res.Exponent = append(res.Exponent, stats.Slope(logSize, logTime))
	}
	return res, nil
}

// Render returns the timing table with the fitted growth exponent as
// the final column.
func (r *ComplexityResults) Render() string {
	h := []string{"Algorithm"}
	for j, v := range r.Sizes {
		h = append(h, fmt.Sprintf("%d (%d)", v, r.Edges[j]))
	}
	h = append(h, "exponent")
	t := table.New("Complexity validation: scheduling times in ms over v (e), with fitted growth exponent", h...)
	for i, alg := range r.Algorithms {
		cells := []string{alg}
		for j := range r.Sizes {
			cells = append(cells, fmt.Sprintf("%.2f", float64(r.Times[i][j].Microseconds())/1000))
		}
		cells = append(cells, fmt.Sprintf("%.2f", r.Exponent[i]))
		t.AddRow(cells...)
	}
	return t.String()
}
