package experiments

import (
	"fmt"
	"time"

	"fastsched/internal/dag"
	"fastsched/internal/dls"
	"fastsched/internal/dsc"
	"fastsched/internal/etf"
	"fastsched/internal/fast"
	"fastsched/internal/sched"
	"fastsched/internal/stats"
	"fastsched/internal/table"
	"fastsched/internal/workload"
)

// RandomStudy configures the §5.2 large random-DAG experiment (paper
// Figure 8). MD is excluded exactly as in the paper ("it took more than
// 8 hours to produce a schedule for a 2000-node DAG").
type RandomStudy struct {
	// Sizes are the node counts (the paper uses 2000..5000 step 1000).
	Sizes []int
	// Procs is the bounded-machine size granted to FAST, ETF and DLS
	// ("more than enough": the paper's bounded algorithms used at most
	// 219 processors).
	Procs int
	// Seed drives graph generation (graph i uses Seed+i).
	Seed int64
	// Repeats > 1 averages each cell over that many independently
	// seeded graphs (mean reported, std recorded); 0 or 1 reproduces the
	// paper's single-draw setup.
	Repeats int
}

// Figure8 returns the study with the paper's configuration.
func Figure8() *RandomStudy {
	return &RandomStudy{Sizes: []int{2000, 3000, 4000, 5000}, Procs: 256, Seed: 7}
}

// RandomRow is one algorithm's measurements across the study's sizes.
// With Repeats > 1, SL/Procs/Times hold per-size means and SLStd the
// per-size standard deviation of the schedule length.
type RandomRow struct {
	Algorithm string
	SL        []float64       // schedule lengths (mean over repeats)
	SLStd     []float64       // std of schedule length over repeats
	Procs     []int           // processors used (mean, rounded)
	Times     []time.Duration // scheduling wall times (mean)
}

// RandomResults holds the whole study.
type RandomResults struct {
	Study      *RandomStudy
	EdgeCounts []int
	Rows       []*RandomRow
}

// Run generates the random graphs and schedules each with FAST, DSC,
// ETF and DLS, recording schedule length, processors used and
// scheduling time.
func (st *RandomStudy) Run() (*RandomResults, error) {
	scheds := []sched.Scheduler{
		fast.New(fast.Options{Seed: Seed}),
		dsc.New(),
		etf.New(),
		dls.New(),
	}
	res := &RandomResults{Study: st}
	for _, s := range scheds {
		res.Rows = append(res.Rows, &RandomRow{Algorithm: s.Name()})
	}
	repeats := st.Repeats
	if repeats < 1 {
		repeats = 1
	}
	for i, v := range st.Sizes {
		graphs := make([]*dagGraph, 0, repeats)
		for r := 0; r < repeats; r++ {
			g, err := workload.Random(workload.RandomOpts{V: v, Seed: st.Seed + int64(i) + int64(r)*1001})
			if err != nil {
				return nil, err
			}
			graphs = append(graphs, g)
		}
		res.EdgeCounts = append(res.EdgeCounts, graphs[0].NumEdges())
		for ri, s := range scheds {
			procs := st.Procs
			if unboundedByDefinition(s.Name()) {
				procs = 0
			}
			var lens, procsUsed []float64
			var total time.Duration
			for _, g := range graphs {
				begin := time.Now()
				schedule, err := s.Schedule(g, procs)
				total += time.Since(begin)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s on v=%d: %w", s.Name(), v, err)
				}
				if err := sched.Validate(g, schedule); err != nil {
					return nil, fmt.Errorf("experiments: %s invalid on v=%d: %w", s.Name(), v, err)
				}
				lens = append(lens, schedule.Length())
				procsUsed = append(procsUsed, float64(schedule.ProcsUsed()))
			}
			sum := stats.Summarize(lens)
			row := res.Rows[ri]
			row.SL = append(row.SL, sum.Mean)
			row.SLStd = append(row.SLStd, sum.Std)
			row.Procs = append(row.Procs, int(stats.Summarize(procsUsed).Mean+0.5))
			row.Times = append(row.Times, total/time.Duration(repeats))
		}
	}
	return res, nil
}

// dagGraph is a local alias keeping the Run loop readable.
type dagGraph = dag.Graph

func (r *RandomResults) headers(withEdges bool) []string {
	h := []string{"Algorithm"}
	for i, v := range r.Study.Sizes {
		if withEdges {
			h = append(h, fmt.Sprintf("%d (%d)", v, r.EdgeCounts[i]))
		} else {
			h = append(h, fmt.Sprintf("%d", v))
		}
	}
	return h
}

// SLTable renders Figure 8(a): schedule lengths normalized to FAST.
func (r *RandomResults) SLTable() *table.Table {
	t := table.New("(a) Normalized schedule lengths — random DAGs (Number of Nodes)", r.headers(false)...)
	base := r.Rows[0]
	for _, row := range r.Rows {
		vals := make([]float64, len(row.SL))
		for j := range vals {
			vals[j] = row.SL[j] / base.SL[j]
		}
		t.AddRowf(row.Algorithm, "%.2f", vals...)
	}
	return t
}

// ProcsTable renders Figure 8(b): processors used.
func (r *RandomResults) ProcsTable() *table.Table {
	t := table.New("(b) Number of processors used — random DAGs (Number of Nodes)", r.headers(false)...)
	for _, row := range r.Rows {
		cells := []string{row.Algorithm}
		for _, p := range row.Procs {
			cells = append(cells, fmt.Sprintf("%d", p))
		}
		t.AddRow(cells...)
	}
	return t
}

// TimesTable renders Figure 8(c): scheduling times in milliseconds,
// with edge counts in the header as in the paper.
func (r *RandomResults) TimesTable() *table.Table {
	t := table.New("(c) Scheduling times in ms — random DAGs (Number of Nodes (Number of Edges))", r.headers(true)...)
	for _, row := range r.Rows {
		vals := make([]float64, len(row.Times))
		for j := range vals {
			vals[j] = float64(row.Times[j].Microseconds()) / 1000.0
		}
		t.AddRowf(row.Algorithm, "%.3f", vals...)
	}
	return t
}

// Render returns all three tables.
func (r *RandomResults) Render() string {
	return r.SLTable().String() + "\n" + r.ProcsTable().String() + "\n" + r.TimesTable().String()
}
