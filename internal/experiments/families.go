package experiments

import (
	"fmt"

	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/sched"
	"fastsched/internal/stats"
	"fastsched/internal/table"
	"fastsched/internal/timing"
	"fastsched/internal/workload"
)

// FamilyStudy is the robustness sweep across every workload family in
// the library (an extension beyond the paper, which evaluates three):
// one representative instance per family, the paper's five algorithms,
// schedule lengths normalized to FAST per column plus a cross-family
// geometric mean.
type FamilyStudy struct {
	// Procs is the grant for bounded algorithms.
	Procs int
	// Scale picks instance sizes: 1 = test scale, 2 = default.
	Scale int
}

// DefaultFamilyStudy returns the standard configuration.
func DefaultFamilyStudy() *FamilyStudy { return &FamilyStudy{Procs: 16, Scale: 2} }

// FamilyResults holds the sweep: SL[i][j] is algorithm i on family j.
type FamilyResults struct {
	Families   []string
	Algorithms []string
	SL         [][]float64
	GeoMean    []float64
}

func (st *FamilyStudy) instances() ([]string, []*dag.Graph, error) {
	db := timing.ParagonLike()
	scale := st.Scale
	if scale < 1 {
		scale = 1
	}
	type gen struct {
		name  string
		build func() (*dag.Graph, error)
	}
	gens := []gen{
		{"gauss", func() (*dag.Graph, error) { return workload.GaussElim(8*scale, db) }},
		{"laplace", func() (*dag.Graph, error) { return workload.Laplace(8*scale, db) }},
		{"fft", func() (*dag.Graph, error) { return workload.FFT(64*scale*scale, db) }},
		{"lu", func() (*dag.Graph, error) { return workload.LU(8*scale, db) }},
		{"cholesky", func() (*dag.Graph, error) { return workload.Cholesky(8*scale, db) }},
		{"stencil", func() (*dag.Graph, error) { return workload.Stencil(4*scale, 3, db) }},
		{"dnc", func() (*dag.Graph, error) { return workload.DivideConquer(3+scale, db) }},
		{"random", func() (*dag.Graph, error) {
			return workload.Random(workload.RandomOpts{V: 150 * scale, Seed: 5, MeanInDegree: 6})
		}},
	}
	names := make([]string, 0, len(gens))
	graphs := make([]*dag.Graph, 0, len(gens))
	for _, g := range gens {
		built, err := g.build()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: family %s: %w", g.name, err)
		}
		names = append(names, g.name)
		graphs = append(graphs, built)
	}
	return names, graphs, nil
}

// Run executes the sweep.
func (st *FamilyStudy) Run() (*FamilyResults, error) {
	names, graphs, err := st.instances()
	if err != nil {
		return nil, err
	}
	scheds := casch.PaperSchedulers(Seed)
	res := &FamilyResults{Families: names}
	for _, s := range scheds {
		res.Algorithms = append(res.Algorithms, s.Name())
	}
	res.SL = make([][]float64, len(scheds))
	for j, g := range graphs {
		for i, s := range scheds {
			procs := st.Procs
			if unboundedByDefinition(s.Name()) {
				procs = 0
			}
			schedule, err := s.Schedule(g, procs)
			if err != nil {
				return nil, fmt.Errorf("experiments: family %s %s: %w", names[j], s.Name(), err)
			}
			if err := sched.Validate(g, schedule); err != nil {
				return nil, fmt.Errorf("experiments: family %s %s invalid: %w", names[j], s.Name(), err)
			}
			res.SL[i] = append(res.SL[i], schedule.Length())
		}
	}
	base := res.SL[0]
	for i := range res.SL {
		res.GeoMean = append(res.GeoMean, stats.GeoMean(stats.Normalize(res.SL[i], base)))
	}
	return res, nil
}

// Render returns the sweep as one table of normalized schedule lengths.
func (r *FamilyResults) Render() string {
	h := append([]string{"Algorithm"}, r.Families...)
	h = append(h, "geomean")
	t := table.New("Workload-family robustness: schedule lengths normalized to FAST", h...)
	base := r.SL[0]
	for i, alg := range r.Algorithms {
		cells := []string{alg}
		for j := range r.SL[i] {
			cells = append(cells, fmt.Sprintf("%.2f", r.SL[i][j]/base[j]))
		}
		cells = append(cells, fmt.Sprintf("%.2f", r.GeoMean[i]))
		t.AddRow(cells...)
	}
	return t.String()
}
