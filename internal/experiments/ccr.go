package experiments

import (
	"fmt"

	"fastsched/internal/casch"
	"fastsched/internal/sched"
	"fastsched/internal/table"
	"fastsched/internal/timing"
	"fastsched/internal/workload"
)

// CCRStudy sweeps the communication-to-computation ratio of one random
// graph and compares schedule quality across the paper's algorithms —
// the standard sensitivity analysis in this literature (the paper
// controls CCR implicitly through its workloads; this study makes the
// dependence explicit). An extension beyond the paper's own tables.
type CCRStudy struct {
	// V is the node count of the underlying random graph.
	V int
	// CCRs are the swept ratios.
	CCRs []float64
	// Procs is the grant for bounded algorithms.
	Procs int
	// Seed drives graph generation.
	Seed int64
}

// DefaultCCRStudy sweeps a 500-node graph over four CCR regimes.
func DefaultCCRStudy() *CCRStudy {
	return &CCRStudy{V: 500, CCRs: []float64{0.1, 0.5, 1, 2, 10}, Procs: 32, Seed: 11}
}

// CCRResults holds the sweep: Rows[i][j] is algorithm i's schedule
// length at CCRs[j].
type CCRResults struct {
	Study      *CCRStudy
	Algorithms []string
	SL         [][]float64
}

// Run generates the graph once per CCR value (rescaled from the same
// seed graph) and schedules it with the paper's five algorithms.
func (st *CCRStudy) Run() (*CCRResults, error) {
	base, err := workload.Random(workload.RandomOpts{V: st.V, Seed: st.Seed, MeanInDegree: 6})
	if err != nil {
		return nil, err
	}
	scheds := casch.PaperSchedulers(Seed)
	res := &CCRResults{Study: st}
	for _, s := range scheds {
		res.Algorithms = append(res.Algorithms, s.Name())
	}
	res.SL = make([][]float64, len(scheds))
	for j, ccr := range st.CCRs {
		g := timing.ScaleCCR(base.Clone(), ccr)
		for i, s := range scheds {
			procs := st.Procs
			if unboundedByDefinition(s.Name()) {
				procs = 0
			}
			schedule, err := s.Schedule(g, procs)
			if err != nil {
				return nil, fmt.Errorf("experiments: ccr %.2f %s: %w", ccr, s.Name(), err)
			}
			if err := sched.Validate(g, schedule); err != nil {
				return nil, fmt.Errorf("experiments: ccr %.2f %s invalid: %w", ccr, s.Name(), err)
			}
			res.SL[i] = append(res.SL[i], schedule.Length())
		}
		_ = j
	}
	return res, nil
}

// Render returns the sweep as one table of schedule lengths normalized
// to FAST per CCR column.
func (r *CCRResults) Render() string {
	h := []string{"Algorithm"}
	for _, c := range r.Study.CCRs {
		h = append(h, fmt.Sprintf("CCR %.1f", c))
	}
	t := table.New(fmt.Sprintf("CCR sweep: normalized schedule lengths, random DAG v=%d", r.Study.V), h...)
	base := r.SL[0]
	for i, alg := range r.Algorithms {
		vals := make([]float64, len(r.SL[i]))
		for j := range vals {
			vals[j] = r.SL[i][j] / base[j]
		}
		t.AddRowf(alg, "%.2f", vals...)
	}
	return t.String()
}
