package experiments

import (
	"strings"
	"testing"
)

func TestExtendedStudySmall(t *testing.T) {
	st := &ExtendedStudy{GaussN: 4, LaplaceN: 4, FFTPoints: 16, Procs: 4}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	wantOrder := []string{"FAST", "DSC", "MD", "ETF", "DLS", "HLFET", "MCP", "LC", "EZ", "ISH", "DCP", "DSH"}
	for i, row := range res.Rows {
		if row.Algorithm != wantOrder[i] {
			t.Fatalf("row %d = %s, want %s", i, row.Algorithm, wantOrder[i])
		}
		if len(row.Exec) != 3 || len(row.Procs) != 3 || len(row.Times) != 3 {
			t.Fatalf("row %s incomplete: %+v", row.Algorithm, row)
		}
		for _, e := range row.Exec {
			if e <= 0 {
				t.Fatalf("row %s has nonpositive exec time", row.Algorithm)
			}
		}
		if row.GeoMean <= 0 {
			t.Fatalf("row %s geomean = %v", row.Algorithm, row.GeoMean)
		}
	}
	// FAST's normalized geomean is exactly 1 by construction.
	if res.Rows[0].GeoMean != 1 {
		t.Fatalf("FAST geomean = %v", res.Rows[0].GeoMean)
	}
	out := res.Render()
	for _, want := range []string{"Extended comparison", "HLFET", "MCP", "LC", "EZ", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if got := len(st.Schedulers()); got != 11 {
		t.Fatalf("Schedulers() = %d entries", got)
	}
}

func TestFamilyStudySmall(t *testing.T) {
	st := &FamilyStudy{Procs: 8, Scale: 1}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Families) != 8 || len(res.SL) != 5 {
		t.Fatalf("shape: %d families, %d algorithms", len(res.Families), len(res.SL))
	}
	for i := range res.SL {
		if len(res.SL[i]) != 8 {
			t.Fatalf("row %s has %d cells", res.Algorithms[i], len(res.SL[i]))
		}
		if res.GeoMean[i] <= 0 {
			t.Fatalf("row %s geomean = %v", res.Algorithms[i], res.GeoMean[i])
		}
	}
	if res.GeoMean[0] != 1 {
		t.Fatalf("FAST geomean = %v", res.GeoMean[0])
	}
	out := res.Render()
	for _, want := range []string{"robustness", "gauss", "cholesky", "stencil", "dnc", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCCRStudySmall(t *testing.T) {
	st := &CCRStudy{V: 60, CCRs: []float64{0.2, 1, 5}, Procs: 8, Seed: 2}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SL) != 5 || len(res.SL[0]) != 3 {
		t.Fatalf("shape %dx%d", len(res.SL), len(res.SL[0]))
	}
	// Higher CCR must not shrink FAST's schedule length: more expensive
	// communication can only hurt (the graph is otherwise identical).
	fast := res.SL[0]
	for j := 1; j < len(fast); j++ {
		if fast[j] < fast[j-1]-1e-9 {
			t.Fatalf("FAST SL decreased as CCR grew: %v", fast)
		}
	}
	out := res.Render()
	for _, want := range []string{"CCR sweep", "CCR 0.2", "CCR 5.0", "FAST", "DLS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGapStudySmall(t *testing.T) {
	st := &GapStudy{Instances: 8, MaxV: 8, Procs: 2, Seed: 4}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved == 0 {
		t.Fatal("no instances solved")
	}
	for i, alg := range res.Algorithms {
		for _, gap := range res.Gaps[i] {
			if gap < 1-1e-9 {
				t.Fatalf("%s gap %v below 1 — heuristic beat the exact solver", alg, gap)
			}
		}
		if res.Optimal[i] > res.Solved {
			t.Fatalf("%s optimal count %d > solved %d", alg, res.Optimal[i], res.Solved)
		}
	}
	out := res.Render()
	for _, want := range []string{"Optimality gaps", "mean gap", "max gap", "FAST", "MCP"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestComplexityStudySmall(t *testing.T) {
	st := &ComplexityStudy{Sizes: []int{100, 200, 400}, Procs: 8, Reps: 1, Seed: 9}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 4 || len(res.Times[0]) != 3 || len(res.Exponent) != 4 {
		t.Fatalf("shape: %d algos, %d sizes", len(res.Times), len(res.Times[0]))
	}
	for i, alg := range res.Algorithms {
		for j, d := range res.Times[i] {
			if d <= 0 {
				t.Fatalf("%s time[%d] = %v", alg, j, d)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"Complexity validation", "exponent", "FAST", "DLS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
