package experiments

import (
	"strings"
	"testing"
)

func TestFigure1Table(t *testing.T) {
	out, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// the three CPNs carry asterisks; the CP length is 23
	for _, want := range []string{"n1*", "n7*", "n9*", "Critical path length: 23"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "n2*") || strings.Contains(out, "n5*") {
		t.Errorf("non-CPN marked as CPN:\n%s", out)
	}
}

func TestFigures2to4AllAlgorithms(t *testing.T) {
	out, err := Figures2to4()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"FAST", "DSC", "MD", "ETF", "DLS", "FAST/initial"} {
		if !strings.Contains(out, alg+" schedule") {
			t.Errorf("missing %s schedule:\n%s", alg, out)
		}
	}
}

// A scaled-down Figure 5 run: verifies the pipeline end to end and the
// headline shape claims that do not depend on scale (DSC unbounded
// processor appetite; FAST competitive execution time).
func TestGaussStudySmall(t *testing.T) {
	res, err := GaussStudy([]int{4, 8}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || len(res.Rows[0]) != 2 {
		t.Fatalf("result shape %dx%d", len(res.Rows), len(res.Rows[0]))
	}
	if res.TaskCounts[0] != 20 || res.TaskCounts[1] != 54 {
		t.Fatalf("task counts = %v, want [20 54]", res.TaskCounts)
	}
	// FAST normalizes to 1.00 by construction.
	for j := range res.Exp.Params {
		if res.Rows[0][j].Algorithm != "FAST" {
			t.Fatalf("row 0 is %s, want FAST", res.Rows[0][j].Algorithm)
		}
	}
	out := res.Render()
	for _, want := range []string{"(a) Normalized", "(b) Number of processors", "(c) Scheduling times", "FAST", "DSC", "MD", "ETF", "DLS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// every algorithm's normalized exec time is positive and sane
	for i := range res.Rows {
		for j := range res.Rows[i] {
			r := res.Rows[i][j]
			if r.ExecTime <= 0 || r.ProcsUsed < 1 {
				t.Fatalf("row %s param %d: %+v", res.Algorithms[i], res.Exp.Params[j], r)
			}
		}
	}
}

func TestLaplaceAndFFTStudiesSmall(t *testing.T) {
	for _, exp := range []*AppExperiment{LaplaceStudy([]int{4}), FFTStudy([]int{16})} {
		res, err := exp.Run()
		if err != nil {
			t.Fatalf("%s: %v", exp.Name, err)
		}
		if got := res.Rows[0][0].V; got != res.TaskCounts[0] {
			t.Fatalf("%s: V mismatch", exp.Name)
		}
		if out := res.Render(); !strings.Contains(out, exp.Name) {
			t.Fatalf("%s: render missing study name", exp.Name)
		}
	}
}

// A scaled-down Figure 8: checks the DSC-uses-many-processors shape and
// that all rows are populated.
func TestRandomStudySmall(t *testing.T) {
	st := &RandomStudy{Sizes: []int{200, 300}, Procs: 32, Seed: 3}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (MD excluded)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Algorithm == "MD" {
			t.Fatal("MD must be excluded from the random study")
		}
		if len(row.SL) != 2 || len(row.Procs) != 2 || len(row.Times) != 2 {
			t.Fatalf("row %s incomplete", row.Algorithm)
		}
	}
	// DSC (row 1) uses far more processors than the bounded algorithms.
	fastProcs, dscProcs := res.Rows[0].Procs[0], res.Rows[1].Procs[0]
	if dscProcs <= fastProcs {
		t.Errorf("DSC used %d procs, FAST %d — expected DSC to use more", dscProcs, fastProcs)
	}
	out := res.Render()
	for _, want := range []string{"(a) Normalized schedule lengths", "(b) Number of processors", "(c) Scheduling times", "DSC", "DLS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRandomStudyRepeats(t *testing.T) {
	st := &RandomStudy{Sizes: []int{120}, Procs: 16, Seed: 3, Repeats: 3}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if len(row.SL) != 1 || len(row.SLStd) != 1 {
			t.Fatalf("row %s shape: %+v", row.Algorithm, row)
		}
		if row.SL[0] <= 0 {
			t.Fatalf("row %s mean SL = %v", row.Algorithm, row.SL[0])
		}
		if row.SLStd[0] < 0 {
			t.Fatalf("row %s std = %v", row.Algorithm, row.SLStd[0])
		}
	}
	// three distinct graphs: at least one algorithm should see variance
	anyStd := false
	for _, row := range res.Rows {
		if row.SLStd[0] > 0 {
			anyStd = true
		}
	}
	if !anyStd {
		t.Fatal("no variance across three differently-seeded graphs — repeats not wired")
	}
}

func TestMachineConfigStable(t *testing.T) {
	m := Machine()
	if !m.Contention || m.Perturb != 0.05 || m.Seed != 42 {
		t.Fatalf("machine config drifted: %+v", m)
	}
}
