// Package experiments reproduces every table and figure of the paper's
// evaluation section: the Figure-1 attribute table, the Figure 2–4
// schedule walkthrough, the three real-application studies (Figures
// 5–7: Gaussian elimination, Laplace solver, FFT) and the large random
// DAG study (Figure 8). Each driver returns structured results plus the
// rendered tables; cmd/experiments and the root benchmarks are thin
// wrappers around this package.
package experiments

import (
	"fmt"

	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/sim"
	"fastsched/internal/table"
)

// Machine returns the machine model shared by all experiments: Paragon-
// style single-port send contention plus a 5% deterministic runtime
// perturbation, so simulated execution differs from the Gantt chart the
// way real execution differed from CASCH's estimates.
func Machine() sim.Config {
	return sim.Config{Contention: true, Perturb: 0.05, Seed: 42}
}

// Seed is the FAST search seed used by all experiment drivers.
const Seed = 1

// AppExperiment describes one of the §5.1 application studies.
type AppExperiment struct {
	// Name titles the tables (e.g. "Gaussian elimination").
	Name string
	// ParamName labels the columns (e.g. "Matrix Dimension").
	ParamName string
	// Params are the column values (e.g. 4, 8, 16, 32).
	Params []int
	// Generate builds the application graph for one parameter.
	Generate func(param int) (*dag.Graph, error)
	// Procs returns the processor count granted to the bounded
	// algorithms (FAST, ETF, DLS) for one parameter; MD and DSC are
	// unbounded by definition and always receive 0.
	Procs func(param int) int
}

// AppResults holds one study's measurements: Rows[i][j] is algorithm i
// (paper row order) on parameter j.
type AppResults struct {
	Exp        *AppExperiment
	Algorithms []string
	TaskCounts []int
	Rows       [][]*casch.Result
}

// unboundedByDefinition reports whether the named algorithm assumes an
// unlimited processor set (MD, DSC and the other clustering
// algorithms).
func unboundedByDefinition(name string) bool { return casch.Unbounded(name) }

// Run executes the study: every paper algorithm on every parameter.
func (e *AppExperiment) Run() (*AppResults, error) {
	scheds := casch.PaperSchedulers(Seed)
	res := &AppResults{Exp: e}
	for _, s := range scheds {
		res.Algorithms = append(res.Algorithms, s.Name())
	}
	res.Rows = make([][]*casch.Result, len(scheds))
	for i := range res.Rows {
		res.Rows[i] = make([]*casch.Result, len(e.Params))
	}
	for j, param := range e.Params {
		g, err := e.Generate(param)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s param %d: %w", e.Name, param, err)
		}
		res.TaskCounts = append(res.TaskCounts, g.NumNodes())
		for i, s := range scheds {
			procs := e.Procs(param)
			if unboundedByDefinition(s.Name()) {
				procs = 0
			}
			r, err := casch.Run(g, s, procs, Machine())
			if err != nil {
				return nil, fmt.Errorf("experiments: %s param %d: %w", e.Name, param, err)
			}
			res.Rows[i][j] = r
		}
	}
	return res, nil
}

func (r *AppResults) headers() []string {
	h := []string{"Algorithm"}
	for _, p := range r.Exp.Params {
		h = append(h, fmt.Sprintf("%d", p))
	}
	return h
}

// ExecTable renders the "(a)" table of the study: simulated execution
// times normalized to FAST's row, exactly like the paper's normalized
// Paragon execution times.
func (r *AppResults) ExecTable() *table.Table {
	t := table.New(fmt.Sprintf("(a) Normalized simulated execution times — %s (%s)", r.Exp.Name, r.Exp.ParamName), r.headers()...)
	base := r.Rows[0] // FAST row
	for i, alg := range r.Algorithms {
		vals := make([]float64, len(r.Exp.Params))
		for j := range vals {
			vals[j] = r.Rows[i][j].ExecTime / base[j].ExecTime
		}
		t.AddRowf(alg, "%.2f", vals...)
	}
	return t
}

// ProcsTable renders the "(b)" table: processors used.
func (r *AppResults) ProcsTable() *table.Table {
	t := table.New(fmt.Sprintf("(b) Number of processors used — %s (%s)", r.Exp.Name, r.Exp.ParamName), r.headers()...)
	for i, alg := range r.Algorithms {
		cells := []string{alg}
		for j := range r.Exp.Params {
			cells = append(cells, fmt.Sprintf("%d", r.Rows[i][j].ProcsUsed))
		}
		t.AddRow(cells...)
	}
	return t
}

// SchedTimeTable renders the "(c)" table: scheduling times in
// milliseconds, with the task count of each column in the header.
func (r *AppResults) SchedTimeTable() *table.Table {
	h := []string{"Algorithm"}
	for j, p := range r.Exp.Params {
		h = append(h, fmt.Sprintf("%d (%d)", p, r.TaskCounts[j]))
	}
	t := table.New(fmt.Sprintf("(c) Scheduling times in ms — %s (%s (tasks))", r.Exp.Name, r.Exp.ParamName), h...)
	for i, alg := range r.Algorithms {
		vals := make([]float64, len(r.Exp.Params))
		for j := range vals {
			vals[j] = float64(r.Rows[i][j].SchedulingTime.Microseconds()) / 1000.0
		}
		t.AddRowf(alg, "%.3f", vals...)
	}
	return t
}

// Render returns all three tables of the study as one report.
func (r *AppResults) Render() string {
	return r.ExecTable().String() + "\n" + r.ProcsTable().String() + "\n" + r.SchedTimeTable().String()
}
