package experiments

import (
	"fmt"
	"time"

	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/dup"
	"fastsched/internal/sched"
	"fastsched/internal/sim"
	"fastsched/internal/stats"
	"fastsched/internal/table"
	"fastsched/internal/timing"
	"fastsched/internal/workload"
)

// ExtendedStudy compares the paper's five algorithms plus the wider
// classical suite (HLFET, MCP, LC, EZ — the algorithms of the authors'
// companion survey, reference [1] of the paper) on one instance of each
// application workload. It is an extension beyond the paper's own
// tables; EXPERIMENTS.md reports it under "ablations and extensions".
type ExtendedStudy struct {
	// GaussN, LaplaceN, FFTPoints select the workload sizes.
	GaussN, LaplaceN, FFTPoints int
	// Procs is the grant for bounded algorithms.
	Procs int
}

// DefaultExtendedStudy uses mid-sized instances of the three paper
// applications.
func DefaultExtendedStudy() *ExtendedStudy {
	return &ExtendedStudy{GaussN: 16, LaplaceN: 16, FFTPoints: 128, Procs: 16}
}

// ExtendedRow is one algorithm's results across the three workloads.
type ExtendedRow struct {
	Algorithm string
	Exec      []float64 // simulated execution time per workload
	Procs     []int
	Times     []time.Duration
	GeoMean   float64 // geometric mean of exec normalized to FAST
}

// ExtendedResults holds one study run.
type ExtendedResults struct {
	Workloads []string
	Rows      []*ExtendedRow
}

// Run executes the study across all nine algorithms.
func (st *ExtendedStudy) Run() (*ExtendedResults, error) {
	type wl struct {
		name string
		g    *dag.Graph
	}
	db := timing.ParagonLike()
	gauss, err := workload.GaussElim(st.GaussN, db)
	if err != nil {
		return nil, err
	}
	laplace, err := workload.Laplace(st.LaplaceN, db)
	if err != nil {
		return nil, err
	}
	fft, err := workload.FFT(st.FFTPoints, db)
	if err != nil {
		return nil, err
	}
	workloads := []wl{
		{fmt.Sprintf("gauss-%d", st.GaussN), gauss},
		{fmt.Sprintf("laplace-%d", st.LaplaceN), laplace},
		{fmt.Sprintf("fft-%d", st.FFTPoints), fft},
	}

	res := &ExtendedResults{}
	for _, w := range workloads {
		res.Workloads = append(res.Workloads, w.name)
	}
	var fastExec []float64
	for _, s := range casch.ExtendedSchedulers(Seed) {
		row := &ExtendedRow{Algorithm: s.Name()}
		for _, w := range workloads {
			procs := st.Procs
			if casch.Unbounded(s.Name()) {
				procs = 0
			}
			r, err := casch.Run(w.g, s, procs, Machine())
			if err != nil {
				return nil, fmt.Errorf("experiments: extended %s on %s: %w", s.Name(), w.name, err)
			}
			row.Exec = append(row.Exec, r.ExecTime)
			row.Procs = append(row.Procs, r.ProcsUsed)
			row.Times = append(row.Times, r.SchedulingTime)
		}
		if row.Algorithm == "FAST" {
			fastExec = row.Exec
		}
		res.Rows = append(res.Rows, row)
	}
	// DSH closes the taxonomy (duplication family). Its result carries a
	// derived graph, so it runs outside the casch pipeline: schedule,
	// then execute the derived graph under the same machine model.
	dshRow := &ExtendedRow{Algorithm: "DSH"}
	dsh := dup.New()
	for _, w := range workloads {
		begin := time.Now()
		r, err := dsh.Schedule(w.g, st.Procs)
		elapsed := time.Since(begin)
		if err != nil {
			return nil, fmt.Errorf("experiments: extended DSH on %s: %w", w.name, err)
		}
		rep, err := sim.Run(r.Derived, r.Schedule, Machine())
		if err != nil {
			return nil, fmt.Errorf("experiments: extended DSH exec on %s: %w", w.name, err)
		}
		dshRow.Exec = append(dshRow.Exec, rep.Time)
		dshRow.Procs = append(dshRow.Procs, r.Schedule.ProcsUsed())
		dshRow.Times = append(dshRow.Times, elapsed)
	}
	res.Rows = append(res.Rows, dshRow)
	for _, row := range res.Rows {
		row.GeoMean = stats.GeoMean(stats.Normalize(row.Exec, fastExec))
	}
	return res, nil
}

// Render returns the study as one table: normalized execution time per
// workload, the cross-workload geometric mean, and scheduling time.
func (r *ExtendedResults) Render() string {
	h := []string{"Algorithm"}
	h = append(h, r.Workloads...)
	h = append(h, "geomean", "sched ms (total)")
	t := table.New("Extended comparison: simulated execution times normalized to FAST", h...)
	var fastExec []float64
	for _, row := range r.Rows {
		if row.Algorithm == "FAST" {
			fastExec = row.Exec
		}
	}
	for _, row := range r.Rows {
		cells := []string{row.Algorithm}
		for i, e := range row.Exec {
			cells = append(cells, fmt.Sprintf("%.2f", e/fastExec[i]))
		}
		cells = append(cells, fmt.Sprintf("%.2f", row.GeoMean))
		var total time.Duration
		for _, d := range row.Times {
			total += d
		}
		cells = append(cells, fmt.Sprintf("%.3f", float64(total.Microseconds())/1000))
		t.AddRow(cells...)
	}
	return t.String()
}

// Schedulers returns the nine algorithms in the study's row order —
// exposed so benches can iterate the same set.
func (st *ExtendedStudy) Schedulers() []sched.Scheduler {
	return casch.ExtendedSchedulers(Seed)
}
