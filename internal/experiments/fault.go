package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"fastsched/internal/fast"
	"fastsched/internal/resched"
	"fastsched/internal/sched"
	"fastsched/internal/sim"
	"fastsched/internal/table"
	"fastsched/internal/workload"
)

// FaultStudy measures makespan degradation under processor crashes
// repaired by rescheduling — an extension beyond the paper, whose
// Paragon runs assumed a fault-free machine. One processor crashes at a
// sweep of fractions of the fault-free makespan; the unexecuted suffix
// is replanned onto the survivors with FAST's two phases, and the
// repaired makespan is compared to the fault-free one.
type FaultStudy struct {
	// V is the random-graph size; Procs the machine size.
	V, Procs int
	// Seed drives graph generation, scheduling, and the repair search.
	Seed int64
	// Fractions are the crash times as fractions of the fault-free
	// makespan.
	Fractions []float64
}

// DefaultFaultStudy crashes one of 8 processors at 10%..90% of the
// fault-free makespan of a 300-node random DAG.
func DefaultFaultStudy() *FaultStudy {
	return &FaultStudy{
		V: 300, Procs: 8, Seed: 29,
		Fractions: []float64{0.1, 0.25, 0.5, 0.75, 0.9},
	}
}

// FaultRow is one crash scenario's outcome.
type FaultRow struct {
	Fraction  float64
	CrashTime float64
	// Replanned is the size of the rescheduled suffix; Prefix the number
	// of tasks that had already completed.
	Replanned, Prefix int
	// Makespan is the repaired completion time; Degradation its ratio
	// over the fault-free makespan.
	Makespan, Degradation float64
	// Completed marks scenarios where the crash did not prevent
	// completion (the dead processor had no remaining work).
	Completed bool
}

// FaultResults holds the sweep outcomes.
type FaultResults struct {
	Study    *FaultStudy
	Baseline float64 // fault-free makespan
	Rows     []FaultRow
}

// Run builds the workload, schedules it once, and replays the crash
// sweep.
func (st *FaultStudy) Run() (*FaultResults, error) {
	g, err := workload.Random(workload.RandomOpts{V: st.V, Seed: st.Seed})
	if err != nil {
		return nil, err
	}
	s, err := fast.New(fast.Options{Seed: st.Seed}).Schedule(g, st.Procs)
	if err != nil {
		return nil, err
	}
	if err := sched.Validate(g, s); err != nil {
		return nil, err
	}
	base, err := sim.Run(g, s, sim.Config{})
	if err != nil {
		return nil, err
	}
	res := &FaultResults{Study: st, Baseline: base.Time}
	rng := rand.New(rand.NewSource(st.Seed))
	procs := s.Procs()
	for _, frac := range st.Fractions {
		crashProc := procs[rng.Intn(len(procs))]
		crashTime := base.Time * frac
		cfg := sim.Config{Faults: &sim.FaultPlan{
			Crashes: []sim.Crash{{Proc: crashProc, Time: crashTime}},
		}}
		row := FaultRow{Fraction: frac, CrashTime: crashTime}
		_, err := sim.Run(g, s, cfg)
		var ce *sim.CrashError
		switch {
		case err == nil:
			row.Completed = true
			row.Makespan = base.Time
			row.Degradation = 1
			row.Prefix = g.NumNodes()
		case errors.As(err, &ce):
			rep, rerr := resched.Repair(g, s, ce, resched.Options{Seed: st.Seed})
			if rerr != nil {
				return nil, rerr
			}
			if verr := sched.ValidateDurations(g, rep.Schedule, rep.Durations); verr != nil {
				return nil, fmt.Errorf("experiments: fault sweep at %.0f%%: %w", frac*100, verr)
			}
			row.Replanned = len(rep.Suffix)
			row.Prefix = ce.Completed
			row.Makespan = rep.Makespan
			row.Degradation = rep.Makespan / base.Time
		default:
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the sweep as a table: degradation vs crash time.
func (r *FaultResults) Render() string {
	t := table.New(
		fmt.Sprintf("crash-recovery sweep: v=%d procs=%d fault-free makespan %.6g (1 processor crashes, suffix replanned by FAST)",
			r.Study.V, r.Study.Procs, r.Baseline),
		"crash at", "prefix done", "replanned", "repaired makespan", "degradation")
	for _, row := range r.Rows {
		if row.Completed {
			t.AddRow(fmt.Sprintf("%.0f%%", row.Fraction*100),
				fmt.Sprintf("%d", row.Prefix), "0", fmt.Sprintf("%.6g", row.Makespan), "1.00 (no repair needed)")
			continue
		}
		t.AddRow(fmt.Sprintf("%.0f%%", row.Fraction*100),
			fmt.Sprintf("%d", row.Prefix),
			fmt.Sprintf("%d", row.Replanned),
			fmt.Sprintf("%.6g", row.Makespan),
			fmt.Sprintf("%.2f", row.Degradation))
	}
	var b strings.Builder
	b.WriteString(t.String())
	return b.String()
}
