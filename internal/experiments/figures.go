package experiments

import (
	"fmt"
	"strings"

	"fastsched/internal/casch"
	"fastsched/internal/dag"
	"fastsched/internal/example"
	"fastsched/internal/fast"
	"fastsched/internal/sched"
	"fastsched/internal/table"
	"fastsched/internal/timing"
	"fastsched/internal/workload"
)

// Figure1 renders the paper's Figure 1(b): the static level, t-level
// (ASAP), b-level and ALAP time of every node of the example graph,
// with critical-path nodes marked by an asterisk.
func Figure1() (string, error) {
	g := example.Graph()
	l, err := dag.ComputeLevels(g)
	if err != nil {
		return "", err
	}
	t := table.New("Figure 1(b): node attributes of the example DAG (CPNs marked *)",
		"node", "SL", "t-level (ASAP)", "b-level", "ALAP")
	for _, n := range g.Nodes() {
		label := n.Label
		if l.IsCPN(n.ID) {
			label += "*"
		}
		t.AddRow(label,
			fmt.Sprintf("%g", l.Static[n.ID]),
			fmt.Sprintf("%g", l.TLevel[n.ID]),
			fmt.Sprintf("%g", l.BLevel[n.ID]),
			fmt.Sprintf("%g", l.ALAP[n.ID]))
	}
	out := t.String()
	out += fmt.Sprintf("\nCritical path length: %g\n", l.CPLen)
	return out, nil
}

// Figures2to4 reproduces the schedule walkthrough of Figures 2–4: the
// example graph scheduled by MD, ETF, DLS, DSC, the FAST initial
// schedule, and FAST after local search, each rendered as a Gantt chart
// with its schedule length.
func Figures2to4() (string, error) {
	g := example.Graph()
	type entry struct {
		s     sched.Scheduler
		procs int
	}
	entries := []entry{}
	for _, s := range casch.PaperSchedulers(Seed) {
		procs := 4
		if unboundedByDefinition(s.Name()) {
			procs = 0
		}
		entries = append(entries, entry{s, procs})
	}
	entries = append(entries, entry{fast.New(fast.Options{NoSearch: true}), 4})

	var b strings.Builder
	b.WriteString("Figures 2-4: schedules of the example DAG\n\n")
	for _, e := range entries {
		schedule, err := e.s.Schedule(g, e.procs)
		if err != nil {
			return "", err
		}
		if err := sched.Validate(g, schedule); err != nil {
			return "", fmt.Errorf("experiments: %s invalid on example graph: %w", e.s.Name(), err)
		}
		b.WriteString(sched.Gantt(g, schedule, 60))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Figure5 returns the Gaussian elimination study (paper Figure 5) with
// the paper's matrix dimensions.
func Figure5() *AppExperiment { return GaussStudy([]int{4, 8, 16, 32}) }

// GaussStudy builds a Gaussian elimination study over arbitrary matrix
// dimensions (the paper uses 4, 8, 16, 32).
func GaussStudy(dims []int) *AppExperiment {
	db := timing.ParagonLike()
	return &AppExperiment{
		Name:      "Gaussian elimination",
		ParamName: "Matrix Dimension",
		Params:    dims,
		Generate:  func(n int) (*dag.Graph, error) { return workload.GaussElim(n, db) },
		// The paper's Figure 5(b): FAST/ETF/DLS use about n processors.
		Procs: func(n int) int { return n },
	}
}

// Figure6 returns the Laplace solver study (paper Figure 6).
func Figure6() *AppExperiment { return LaplaceStudy([]int{4, 8, 16, 32}) }

// LaplaceStudy builds a Laplace equation solver study over arbitrary
// grid dimensions.
func LaplaceStudy(dims []int) *AppExperiment {
	db := timing.ParagonLike()
	return &AppExperiment{
		Name:      "Laplace equation solver",
		ParamName: "Matrix Dimension",
		Params:    dims,
		Generate:  func(n int) (*dag.Graph, error) { return workload.Laplace(n, db) },
		Procs:     func(n int) int { return n },
	}
}

// Figure7 returns the FFT study (paper Figure 7).
func Figure7() *AppExperiment { return FFTStudy([]int{16, 64, 128, 512}) }

// FFTStudy builds an FFT study over arbitrary point counts (powers of
// two).
func FFTStudy(points []int) *AppExperiment {
	db := timing.ParagonLike()
	return &AppExperiment{
		Name:      "FFT",
		ParamName: "Number of Points",
		Params:    points,
		Generate:  func(p int) (*dag.Graph, error) { return workload.FFT(p, db) },
		// Maximum block parallelism of the butterfly.
		Procs: func(p int) int { return workload.FFTTaskCount(p) },
	}
}
