package fastsched

import (
	"context"
	"io"

	"fastsched/internal/batch"
	"fastsched/internal/bounds"
	"fastsched/internal/casch"
	"fastsched/internal/codegen"
	"fastsched/internal/dag"
	"fastsched/internal/dls"
	"fastsched/internal/dsc"
	"fastsched/internal/dup"
	"fastsched/internal/etf"
	"fastsched/internal/example"
	"fastsched/internal/ez"
	"fastsched/internal/fast"
	"fastsched/internal/frontend"
	"fastsched/internal/hlfet"
	"fastsched/internal/lc"
	"fastsched/internal/listsched"
	"fastsched/internal/mcp"
	"fastsched/internal/md"
	"fastsched/internal/mh"
	"fastsched/internal/obs"
	"fastsched/internal/online"
	"fastsched/internal/optimal"
	"fastsched/internal/plan"
	"fastsched/internal/report"
	"fastsched/internal/resched"
	"fastsched/internal/sched"
	"fastsched/internal/sim"
	"fastsched/internal/timing"
	"fastsched/internal/transform"
	"fastsched/internal/workload"
)

// Core graph and schedule types.
type (
	// Graph is a node- and edge-weighted directed acyclic task graph.
	Graph = dag.Graph
	// NodeID identifies a node within a Graph.
	NodeID = dag.NodeID
	// Node is one task of a Graph.
	Node = dag.Node
	// Edge is one message/precedence constraint of a Graph.
	Edge = dag.Edge
	// Levels holds t-level, b-level, static-level and ALAP attributes.
	Levels = dag.Levels
	// Schedule assigns every task a processor and a time slot.
	Schedule = sched.Schedule
	// Placement is one task's slot within a Schedule.
	Placement = sched.Placement
	// Scheduler is the interface all algorithms implement.
	Scheduler = sched.Scheduler
)

// NewGraph returns an empty task graph with capacity for n nodes.
func NewGraph(n int) *Graph { return dag.New(n) }

// ReadGraphJSON parses a task graph from its JSON form.
func ReadGraphJSON(r io.Reader) (*Graph, string, error) { return dag.ReadJSON(r) }

// WriteGraphJSON serializes a task graph to JSON.
func WriteGraphJSON(w io.Writer, g *Graph, name string) error { return dag.WriteJSON(w, g, name) }

// GraphDOT renders a task graph in Graphviz dot syntax.
func GraphDOT(g *Graph, name string) string { return dag.DOT(g, name) }

// ReadGraphSTG parses a task graph in the Standard Task Graph (STG)
// benchmark format; every edge gets defaultComm as its communication
// cost (STG carries none).
func ReadGraphSTG(r io.Reader, defaultComm float64) (*Graph, error) {
	return dag.ReadSTG(r, defaultComm)
}

// WriteGraphSTG serializes a task graph in STG form (communication
// costs are dropped; STG cannot represent them).
func WriteGraphSTG(w io.Writer, g *Graph) error { return dag.WriteSTG(w, g) }

// WriteScheduleJSON serializes a complete schedule.
func WriteScheduleJSON(w io.Writer, s *Schedule) error { return sched.WriteJSON(w, s) }

// ReadScheduleJSON parses a schedule and validates it against g.
func ReadScheduleJSON(r io.Reader, g *Graph) (*Schedule, error) { return sched.ReadJSON(r, g) }

// LowerBounds holds the schedule-length lower bounds of a graph.
type LowerBounds = bounds.Result

// ComputeBounds returns the dependence (computation-only critical
// path) and area (work / processors) lower bounds for g on procs
// processors.
func ComputeBounds(g *Graph, procs int) (LowerBounds, error) { return bounds.Compute(g, procs) }

// ComputeLevels computes the scheduling attributes (t-level, b-level,
// static level, ALAP, critical-path length) of every node in O(v+e).
func ComputeLevels(g *Graph) (*Levels, error) { return dag.ComputeLevels(g) }

// GraphProfile characterizes a task graph's structure (height, width,
// CCR, available parallelism).
type GraphProfile = dag.Profile

// ComputeProfile analyzes g's structure in O(v+e).
func ComputeProfile(g *Graph) (GraphProfile, error) { return dag.ComputeProfile(g) }

// CriticalPath returns one critical path of g.
func CriticalPath(g *Graph, l *Levels) []NodeID { return dag.CriticalPath(g, l) }

// Schedulers. Each constructor returns a ready-to-use Scheduler whose
// Schedule(g, procs) method maps every node of g onto processors;
// procs <= 0 requests an unbounded ("more than enough") machine.

// FASTOptions configures the FAST scheduler (search steps, seed,
// ablation switches, PFAST parallelism). See internal/fast.Options.
type FASTOptions = fast.Options

// SearchStrategy selects FAST's phase-2 search strategy.
type SearchStrategy = fast.Strategy

// The available search strategies: the paper's greedy random walk and
// the two extensions targeting its local-minima caveat.
const (
	GreedySearch    SearchStrategy = fast.Greedy
	SteepestSearch  SearchStrategy = fast.SteepestDescent
	AnnealingSearch SearchStrategy = fast.Annealing
)

// FAST returns the paper's scheduler with default options
// (CPN-Dominate list, ready-time placement, MAXSTEP=64).
func FAST() Scheduler { return fast.Default() }

// FASTWith returns a FAST scheduler with explicit options.
func FASTWith(opts FASTOptions) Scheduler { return fast.New(opts) }

// FindFAST runs the paper's default FAST configuration under ctx. On
// cancellation or deadline expiry it returns the best schedule found so
// far together with ctx.Err(), so callers can keep the partial result.
func FindFAST(ctx context.Context, g *Graph, procs int) (*Schedule, error) {
	return fast.Find(ctx, g, procs)
}

// PFAST returns the parallel multi-start FAST variant with the given
// number of concurrent searchers.
func PFAST(parallelism int, seed int64) Scheduler {
	return fast.New(fast.Options{Parallelism: parallelism, Seed: seed})
}

// ETF returns the Earliest-Task-First scheduler (Hwang et al.).
func ETF() Scheduler { return etf.New() }

// DLS returns the Dynamic-Level-Scheduling scheduler (Sih & Lee).
func DLS() Scheduler { return dls.New() }

// MD returns the Mobility-Directed scheduler (Wu & Gajski).
func MD() Scheduler { return md.New() }

// DSC returns the Dominant-Sequence-Clustering scheduler
// (Yang & Gerasoulis).
func DSC() Scheduler { return dsc.New() }

// HLFET returns the Highest-Level-First-with-Estimated-Times scheduler
// (Adam, Chandy, Dickson) from the extended classical suite.
func HLFET() Scheduler { return hlfet.New() }

// MCP returns the Modified-Critical-Path scheduler (Wu & Gajski) from
// the extended classical suite.
func MCP() Scheduler { return mcp.New() }

// LC returns the Linear-Clustering scheduler (Kim & Browne) from the
// extended classical suite.
func LC() Scheduler { return lc.New() }

// EZ returns Sarkar's Edge-Zeroing scheduler from the extended
// classical suite.
func EZ() Scheduler { return ez.New() }

// MH returns the Mapping-Heuristic scheduler (El-Rewini & Lewis), the
// topology-aware classic; pass the mesh model the machine will use.
func MH(topology MeshTopology) Scheduler { return mh.New(topology) }

// Optimal returns the exact branch-and-bound solver, feasible for
// small graphs (roughly v <= 25–30 depending on structure); it errors
// when its expansion budget is exceeded rather than returning a
// suboptimal schedule. SolveOptimal is the anytime variant that also
// reports how the search went.
func Optimal() Scheduler { return optimal.New() }

// OptimalReport describes an exact solve: whether optimality was
// proven, the best makespan and root lower bound, the effective
// processor count (and whether it was defaulted), and the search-work
// counters.
type OptimalReport = optimal.Report

// ErrOptimalBudget is returned by Optimal().Schedule when the
// branch-and-bound search exhausts its expansion budget before proving
// optimality; treat it as "instance too large for exact solving".
var ErrOptimalBudget = optimal.ErrBudgetExceeded

// SolveOptimal runs the exact branch-and-bound solver in anytime mode:
// the returned schedule is always valid — the canonical optimum when
// the report says Proven, otherwise the best incumbent found within
// the budget. procs <= 0 selects min(v, 4), surfaced in the report.
func SolveOptimal(g *Graph, procs int) (*Schedule, OptimalReport, error) {
	return optimal.New().Solve(g, procs)
}

// DuplicationResult is a duplication schedule: a derived graph with
// cloned task executions plus a conventional schedule over it.
type DuplicationResult = dup.Result

// Duplicate schedules g with the DSH-style duplication heuristic (the
// third classic family: tasks may be re-executed on several processors
// to avoid waiting for messages). The result carries its own derived
// graph because duplication breaks the one-placement-per-task model.
func Duplicate(g *Graph, procs int) (*DuplicationResult, error) {
	return dup.New().Schedule(g, procs)
}

// NewScheduler constructs a scheduler by name ("fast", "fast-initial",
// "pfast", "dsc", "md", "etf", "dls").
func NewScheduler(name string, seed int64) (Scheduler, error) {
	return casch.NewScheduler(name, seed)
}

// Observability. The obs layer is zero-dependency and nil-safe: a nil
// registry/sink/trajectory disables telemetry with no allocations on
// the scheduler hot paths.

// MetricsRegistry collects named counters, gauges, bounded histograms
// and timers, and dumps itself as JSON or text.
type MetricsRegistry = obs.Registry

// MetricsSink is the metric-creation interface the instrumented layers
// accept; *MetricsRegistry implements it.
type MetricsSink = obs.Sink

// MetricSnapshot is the exported state of one metric.
type MetricSnapshot = obs.Snapshot

// SearchTrajectory records one event per FAST local-search step and
// exports them as JSONL.
type SearchTrajectory = obs.Trajectory

// SearchStepEvent is one recorded local-search transfer attempt.
type SearchStepEvent = obs.StepEvent

// NewMetricsRegistry returns an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSearchTrajectory returns a bounded search-step recorder (max <= 0
// selects the default cap).
func NewSearchTrajectory(max int) *SearchTrajectory { return obs.NewTrajectory(max) }

// EnableSchedulerMetrics routes the package-level telemetry of the
// list-scheduling machinery (insertion hit rate, DAT-cache hits,
// ready-list sizes) into sink; nil disables it again.
func EnableSchedulerMetrics(sink MetricsSink) { listsched.EnableMetrics(sink) }

// instrumentable is implemented by schedulers that accept a metrics
// sink and trajectory recorder after construction (the FAST family).
type instrumentable interface {
	Instrument(sink obs.Sink, traj *obs.Trajectory)
}

// Instrument attaches sink and traj to s when s supports telemetry
// (the FAST family: fast, fast-initial, pfast), reporting whether it
// did. Schedulers without their own hooks still contribute through
// EnableSchedulerMetrics and SimConfig.Metrics.
func Instrument(s Scheduler, sink MetricsSink, traj *SearchTrajectory) bool {
	i, ok := s.(instrumentable)
	if ok {
		i.Instrument(sink, traj)
	}
	return ok
}

// AlgorithmNames lists the names NewScheduler accepts.
func AlgorithmNames() []string { return casch.AlgorithmNames() }

// Compiled plans. A compiled graph bundles every immutable per-graph
// artifact the schedulers consume — CSR adjacency, level metrics,
// node classification, the CPN-Dominate list — computed once per
// unique graph and shared read-only across runs. Serving paths that
// schedule the same graph repeatedly (the batch engine does this
// automatically) skip the per-request graph analysis entirely;
// results are bit-identical to uncompiled runs.

// CompiledGraph is the immutable compiled form of a task graph.
type CompiledGraph = plan.CompiledGraph

// GraphContentKey is a graph's content address: a SHA-256 over its
// weights and adjacency in stored order.
type GraphContentKey = plan.Key

// PlanCache is a content-addressed, lock-striped LRU over compiled
// graphs with single-flight compilation.
type PlanCache = plan.Cache

// CompileGraph analyzes g once; it errors when g is empty or cyclic.
func CompileGraph(g *Graph) (*CompiledGraph, error) { return plan.Compile(g) }

// GraphKey returns g's content address without compiling it.
func GraphKey(g *Graph) GraphContentKey { return plan.GraphKey(g) }

// NewPlanCache returns a compilation cache holding at most max
// compiled graphs (0 selects the default size); sink, when non-nil,
// receives the plan.* metrics.
func NewPlanCache(max int, sink MetricsSink) *PlanCache { return plan.NewCache(max, sink) }

// compiledScheduler is implemented by schedulers with a compiled-plan
// entry point (the FAST family via FindCompiled/ScheduleCompiled, and
// the ETF/DLS/HLFET/DSC baselines via ScheduleCompiled).
type compiledScheduler interface {
	ScheduleCompiled(cg *plan.CompiledGraph, procs int) (*sched.Schedule, error)
}

// ScheduleCompiled schedules a pre-compiled graph with s when s has a
// compiled-plan entry point, falling back to s.Schedule(cg.Graph, ...)
// otherwise. Either way the result is bit-identical to s.Schedule on
// the original graph.
func ScheduleCompiled(s Scheduler, cg *CompiledGraph, procs int) (*Schedule, error) {
	if cs, ok := s.(compiledScheduler); ok {
		return cs.ScheduleCompiled(cg, procs)
	}
	return s.Schedule(cg.Graph, procs)
}

// Batch serving. The batch engine schedules many DAGs concurrently
// through a bounded worker pool with backpressure, a content-addressed
// result cache and single-flight deduplication of identical requests.

// BatchEngine is the concurrent multi-DAG scheduling engine.
type BatchEngine = batch.Engine

// BatchOptions configures a BatchEngine (workers, queue depth, cache
// size, metrics sink).
type BatchOptions = batch.Options

// BatchRequest is one scheduling job: graph, processor count,
// algorithm, seed, and optional per-request deadline or search budget.
type BatchRequest = batch.Request

// BatchResult is the outcome of one BatchRequest.
type BatchResult = batch.Result

// BatchFileResult is one directory entry's outcome in a batch run.
type BatchFileResult = batch.FileResult

// BatchAggregate summarizes a directory batch run.
type BatchAggregate = batch.Aggregate

// The batch engine's typed request-rejection errors; classify with
// errors.Is.
var (
	ErrBatchClosed       = batch.ErrClosed
	ErrBatchQueueFull    = batch.ErrQueueFull
	ErrBatchNilGraph     = batch.ErrNilGraph
	ErrBatchEmptyGraph   = batch.ErrEmptyGraph
	ErrBatchBadDeadline  = batch.ErrBadDeadline
	ErrBatchBadBudget    = batch.ErrBadBudget
	ErrBatchBadAlgorithm = batch.ErrBadAlgorithm
	ErrBatchBadGraph     = batch.ErrBadGraph
)

// NewBatchEngine returns a started engine; Close it when done.
func NewBatchEngine(opts BatchOptions) *BatchEngine { return batch.New(opts) }

// RunBatchDir schedules every *.json task graph of dir through e
// concurrently, using tmpl for everything but ID and Graph.
func RunBatchDir(ctx context.Context, e *BatchEngine, dir string, tmpl BatchRequest) ([]BatchFileResult, BatchAggregate, error) {
	return batch.RunDir(ctx, e, dir, tmpl)
}

// WriteBatchJSONL emits one compact JSON object per batch file result.
func WriteBatchJSONL(w io.Writer, results []BatchFileResult) error {
	return batch.WriteJSONL(w, results)
}

// FormatBatchAggregate renders a batch run's aggregate as plain text.
func FormatBatchAggregate(agg BatchAggregate, workers int) string {
	return report.BatchText(agg, workers)
}

// Online serving. The online engine runs a stream of jobs — DAGs with
// arrival times, deadlines, tenants and weights — against one shared
// machine over simulated time, with deadline misses, tardiness,
// response times and per-tenant fairness as first-class outcomes, and
// mid-stream processor crashes repaired through the rescheduler.

// OnlineJob is one arriving unit of work: a task graph plus arrival
// time, optional absolute deadline, tenant and share weight.
type OnlineJob = online.Job

// OnlineOptions configures an online run (machine size, packing
// policy, solo-plan delegate algorithm, fault plan, metrics).
type OnlineOptions = online.Options

// OnlineJobResult is one job's realized outcome — the JSONL trace
// record of fastsched -online.
type OnlineJobResult = online.JobResult

// OnlineReport aggregates an online run: misses, tardiness, response
// times, crash repairs, per-tenant fairness.
type OnlineReport = online.Report

// Typed online submission errors, classifiable with errors.Is.
var (
	ErrOnlineBadProcs         = online.ErrBadProcs
	ErrOnlineBadPolicy        = online.ErrBadPolicy
	ErrOnlineBadArrival       = online.ErrBadArrival
	ErrOnlineBadDeadline      = online.ErrBadDeadline
	ErrOnlineDuplicateID      = online.ErrDuplicateID
	ErrOnlineFaultUnsupported = online.ErrFaultUnsupported
	ErrOnlineAllProcsDead     = online.ErrAllProcessorsDead
)

// OnlinePolicyNames lists the accepted packing policies.
func OnlinePolicyNames() []string { return online.PolicyNames() }

// RunOnline drives the whole workload to quiescence and reports
// per-job outcomes in submission order. Bit-identical for a fixed seed
// across runs and GOMAXPROCS settings.
func RunOnline(jobs []OnlineJob, opts OnlineOptions) (*OnlineReport, error) {
	return online.Run(jobs, opts)
}

// WriteOnlineJSONL emits one JSON object per job outcome plus a final
// aggregate record.
func WriteOnlineJSONL(w io.Writer, rep *OnlineReport) error { return online.WriteJSONL(w, rep) }

// FormatOnlineReport renders an online run's aggregate as plain text.
func FormatOnlineReport(rep *OnlineReport) string { return report.OnlineText(rep) }

// ArrivalOptions configures the seeded arrival-time generator
// (Poisson or bursty) feeding the online engine.
type ArrivalOptions = workload.ArrivalOpts

// GenerateArrivals draws n nondecreasing arrival instants
// deterministically from the seed.
func GenerateArrivals(opts ArrivalOptions) ([]float64, error) { return workload.Arrivals(opts) }

// Validate checks that s is a legal execution of g: complete, overlap-
// free, and respecting every precedence and communication delay.
func Validate(g *Graph, s *Schedule) error { return sched.Validate(g, s) }

// ValidateDurations is Validate with per-node realized durations in
// place of the graph weights — for spliced crash-recovery schedules
// whose executed prefix ran with jittered durations. A nil dur slice is
// plain Validate.
func ValidateDurations(g *Graph, s *Schedule, dur []float64) error {
	return sched.ValidateDurations(g, s, dur)
}

// Gantt renders s as a text Gantt chart of the given width.
func Gantt(g *Graph, s *Schedule, width int) string { return sched.Gantt(g, s, width) }

// ScheduleTable renders s as a start-time-ordered placement table.
func ScheduleTable(g *Graph, s *Schedule) string { return sched.Table(g, s) }

// GanttSVG renders s as a standalone SVG Gantt chart of the given pixel
// width.
func GanttSVG(g *Graph, s *Schedule, width int) string { return sched.SVG(g, s, width) }

// CriticalChainLink is one step of a schedule's binding event chain.
type CriticalChainLink = sched.CriticalChainLink

// CriticalChain explains a schedule's makespan: the backward chain of
// binding constraints (message waits, processor waits) from the last
// task to a chain head.
func CriticalChain(g *Graph, s *Schedule) ([]CriticalChainLink, error) {
	return sched.CriticalChain(g, s)
}

// FormatChain renders a critical chain with task labels.
func FormatChain(g *Graph, s *Schedule, chain []CriticalChainLink) string {
	return sched.FormatChain(g, s, chain)
}

// ScheduleMetrics summarizes schedule quality (imbalance, cross-edge
// traffic, efficiency).
type ScheduleMetrics = sched.Metrics

// ComputeScheduleMetrics derives the metrics of a complete schedule.
func ComputeScheduleMetrics(g *Graph, s *Schedule) ScheduleMetrics {
	return sched.ComputeMetrics(g, s)
}

// Workload generation.

// TimingDB converts operation counts and message sizes into task-graph
// weights; the stand-in for CASCH's benchmarked timing database.
type TimingDB = timing.DB

// ParagonLike returns the default machine cost model.
func ParagonLike() TimingDB { return timing.ParagonLike() }

// CoarseGrain returns a computation-dominated cost model (CCR << 1).
func CoarseGrain() TimingDB { return timing.CoarseGrain() }

// FineGrain returns a communication-dominated cost model (CCR >> 1).
func FineGrain() TimingDB { return timing.FineGrain() }

// ScaleCCR rescales g's edge weights to the target communication-to-
// computation ratio.
func ScaleCCR(g *Graph, target float64) *Graph { return timing.ScaleCCR(g, target) }

// GaussElim returns the Gaussian elimination task graph for matrix
// dimension n (paper §5.1; task counts match Figure 5 exactly).
func GaussElim(n int, db TimingDB) (*Graph, error) { return workload.GaussElim(n, db) }

// Laplace returns the Laplace equation solver task graph for an n×n
// grid (task counts match Figure 6 exactly).
func Laplace(n int, db TimingDB) (*Graph, error) { return workload.Laplace(n, db) }

// FFT returns the blocked-butterfly FFT task graph for the given number
// of points (task counts match Figure 7 exactly).
func FFT(points int, db TimingDB) (*Graph, error) { return workload.FFT(points, db) }

// LU returns the right-looking LU decomposition task graph for an n×n
// matrix.
func LU(n int, db TimingDB) (*Graph, error) { return workload.LU(n, db) }

// Cholesky returns the column-oriented Cholesky factorization task
// graph for an n×n matrix.
func Cholesky(n int, db TimingDB) (*Graph, error) { return workload.Cholesky(n, db) }

// Stencil returns the task graph of iters Jacobi sweeps over an n×n
// grid.
func Stencil(n, iters int, db TimingDB) (*Graph, error) { return workload.Stencil(n, iters, db) }

// DivideConquer returns the depth-d fork-join recursion task graph.
func DivideConquer(depth int, db TimingDB) (*Graph, error) { return workload.DivideConquer(depth, db) }

// RandomDAGOptions configures the §5.2 layered random DAG generator.
type RandomDAGOptions = workload.RandomOpts

// RandomDAG generates a layered random DAG per the paper's recipe.
func RandomDAG(opts RandomDAGOptions) (*Graph, error) { return workload.Random(opts) }

// PaperExampleGraph returns the reconstructed 9-node example DAG of the
// paper's Figure 1 (critical path n1 → n7 → n9, length 23).
func PaperExampleGraph() *Graph { return example.Graph() }

// Graph transformations.

// TransitiveReduction removes zero-weight precedence edges implied by
// longer paths, shrinking e without changing the legal schedules.
func TransitiveReduction(g *Graph) (*Graph, error) { return transform.TransitiveReduction(g) }

// GrainPackResult maps a coarsened graph back to its original tasks.
type GrainPackResult = transform.PackResult

// GrainPack fuses linear chains of small tasks into grains of at most
// maxGrain total weight (Sarkar-style granularity adjustment).
func GrainPack(g *Graph, maxGrain float64) (*GrainPackResult, error) {
	return transform.GrainPack(g, maxGrain)
}

// Execution simulation (the Intel Paragon stand-in).

// SimConfig selects machine effects for simulated execution.
type SimConfig = sim.Config

// MeshTopology adds Paragon-style 2D-mesh hop latency to the machine
// model (set SimConfig.Topology).
type MeshTopology = sim.Mesh

// SimReport is the outcome of one simulated execution.
type SimReport = sim.Report

// Simulate executes schedule s of graph g on the simulated machine.
func Simulate(g *Graph, s *Schedule, cfg SimConfig) (*SimReport, error) {
	return sim.Run(g, s, cfg)
}

// SimTrace holds the event trace of one simulated execution.
type SimTrace = sim.Tracer

// SimulateTraced is Simulate with event recording (task start/finish,
// message send/arrive), for timeline tooling and debugging.
func SimulateTraced(g *Graph, s *Schedule, cfg SimConfig) (*SimReport, *SimTrace, error) {
	return sim.RunTraced(g, s, cfg)
}

// Fault injection and crash recovery.

// FaultPlan injects deterministic seeded faults (processor crashes,
// transient message loss/delay with bounded retry, duration jitter)
// into a simulated execution; set SimConfig.Faults. The zero value
// injects nothing and reproduces fault-free runs bit-for-bit.
type FaultPlan = sim.FaultPlan

// ProcCrash schedules the permanent failure of one processor.
type ProcCrash = sim.Crash

// CrashError is returned by Simulate when processor crashes prevent
// completion; it freezes the executed prefix for RepairSchedule.
type CrashError = sim.CrashError

// MessageLossError is returned by Simulate when a message exhausts its
// retry budget.
type MessageLossError = sim.MessageLossError

// ReadFaultPlan parses and validates a fault plan from JSON.
func ReadFaultPlan(r io.Reader) (*FaultPlan, error) { return sim.ReadFaultPlan(r) }

// ReschedOptions configures crash recovery (suffix search budget, seed,
// optional context deadline).
type ReschedOptions = resched.Options

// ReschedResult is a repaired execution: the spliced schedule, the
// durations to validate it against, and the recovery bookkeeping.
type ReschedResult = resched.Result

// RepairSchedule replans the unexecuted suffix of a crashed run (the
// *CrashError from Simulate) onto the surviving processors using FAST's
// two phases, and splices it onto the frozen prefix.
func RepairSchedule(g *Graph, s *Schedule, crash *CrashError, opts ReschedOptions) (*ReschedResult, error) {
	return resched.Repair(g, s, crash, opts)
}

// SimulateWithRecovery executes the schedule and, when a crash prevents
// completion, repairs it via RepairSchedule; the Result is nil when no
// crash occurred.
func SimulateWithRecovery(g *Graph, s *Schedule, cfg SimConfig, opts ReschedOptions) (*SimReport, *ReschedResult, error) {
	return resched.Execute(g, s, cfg, opts)
}

// SimulateWithRecoveryTraced is SimulateWithRecovery with event
// recording; on a crash the trace holds the executed prefix, the replan
// marker and the repaired suffix.
func SimulateWithRecoveryTraced(g *Graph, s *Schedule, cfg SimConfig, opts ReschedOptions) (*SimReport, *ReschedResult, *SimTrace, error) {
	return resched.ExecuteTraced(g, s, cfg, opts)
}

// Sequential-program front end (the CASCH front half).

// SeqProgram is a sequential program: ordered tasks with read/write
// sets over named variables, lowered to a task graph by dependence
// analysis.
type SeqProgram = frontend.Program

// NewSeqProgram returns an empty sequential program whose undeclared
// variables cost defaultSize to ship between processors.
func NewSeqProgram(defaultSize float64) *SeqProgram { return frontend.NewProgram(defaultSize) }

// ParseSeqProgram reads a sequential program from its text form (see
// internal/frontend.Parse for the grammar).
func ParseSeqProgram(r io.Reader) (*SeqProgram, error) { return frontend.Parse(r) }

// Scheduled-code generation (the CASCH back end).

// Program is the compiled, scheduled form of a parallel program: one
// instruction sequence (COMPUTE/SEND/RECV) per processor.
type Program = codegen.Program

// Compile lowers a valid schedule to per-processor scheduled code.
func Compile(g *Graph, s *Schedule) (*Program, error) { return codegen.Compile(g, s) }

// ExecuteProgram runs compiled code on the instruction-level machine
// interpreter; it agrees with Simulate on the source schedule.
func ExecuteProgram(g *Graph, p *Program, cfg SimConfig) (*SimReport, error) {
	return codegen.Execute(g, p, cfg)
}

// PipelineResult bundles the metrics of one schedule-then-execute run.
type PipelineResult = casch.Result

// RunPipeline schedules g with s on procs processors, validates and
// executes the schedule, and reports execution time, processors used
// and scheduling time — the paper's three per-table metrics.
func RunPipeline(g *Graph, s Scheduler, procs int, machine SimConfig) (*PipelineResult, error) {
	return casch.Run(g, s, procs, machine)
}
