package fastsched_test

import (
	"fmt"
	"strings"

	"fastsched"
)

// Building a graph by hand and scheduling it with FAST.
func ExampleFAST() {
	g := fastsched.NewGraph(3)
	a := g.AddNode("a", 2)
	b := g.AddNode("b", 3)
	c := g.AddNode("c", 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 1)

	s, err := fastsched.FAST().Schedule(g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("length %.0f on %d processor(s)\n", s.Length(), s.ProcsUsed())
	// Output: length 6 on 1 processor(s)
}

// The level attributes behind every scheduling decision.
func ExampleComputeLevels() {
	g := fastsched.PaperExampleGraph()
	l, err := fastsched.ComputeLevels(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("critical path length %.0f\n", l.CPLen)
	cp := fastsched.CriticalPath(g, l)
	labels := make([]string, len(cp))
	for i, n := range cp {
		labels[i] = g.Label(n)
	}
	fmt.Println(strings.Join(labels, " -> "))
	// Output:
	// critical path length 23
	// n1 -> n7 -> n9
}

// Lowering a sequential program to a task graph via dependence
// analysis.
func ExampleParseSeqProgram() {
	src := `
task produce cost 5 writes data
task consume cost 3 reads data
`
	p, err := fastsched.ParseSeqProgram(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	g, err := p.BuildDAG()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d tasks, %d dependences\n", g.NumNodes(), g.NumEdges())
	// Output: 2 tasks, 1 dependences
}

// Compiling a schedule to per-processor code and executing it.
func ExampleCompile() {
	g := fastsched.NewGraph(2)
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	g.MustAddEdge(a, b, 4)

	s, err := fastsched.FAST().Schedule(g, 2)
	if err != nil {
		panic(err)
	}
	p, err := fastsched.Compile(g, s)
	if err != nil {
		panic(err)
	}
	rep, err := fastsched.ExecuteProgram(g, p, fastsched.SimConfig{})
	if err != nil {
		panic(err)
	}
	// FAST co-locates the pair rather than paying the message.
	fmt.Printf("%d messages, time %.0f\n", rep.Messages, rep.Time)
	// Output: 0 messages, time 2
}

// Duplication-based scheduling: re-executing a hot producer avoids the
// message entirely.
func ExampleDuplicate() {
	g := fastsched.NewGraph(3)
	root := g.AddNode("root", 1)
	l := g.AddNode("left", 4)
	r := g.AddNode("right", 4)
	g.MustAddEdge(root, l, 25)
	g.MustAddEdge(root, r, 25)

	res, err := fastsched.Duplicate(g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("length %.0f with %d clone(s)\n", res.Schedule.Length(), res.Clones)
	// Output: length 5 with 1 clone(s)
}

// Generating one of the paper's application workloads.
func ExampleGaussElim() {
	g, err := fastsched.GaussElim(4, fastsched.ParagonLike())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d tasks (matches the paper's Figure 5 header)\n", g.NumNodes())
	// Output: 20 tasks (matches the paper's Figure 5 header)
}
